"""The sharded bulk-synchronous simulation engine.

One round is three phases, each a pure function of start-of-round state:

1. **plan** (per partition, parallelizable) — every alive correct node in
   the partition draws its push targets and runs its pull sessions against
   the *frozen* start-of-round views; Byzantine pushes come from the
   globally precomputed balanced-attack assignment.  All randomness is
   counter-based (:mod:`repro.shard.rand`), so no draw depends on
   iteration order or on any other partition.
2. **barrier** (global) — partition outputs are merged and stably sorted
   by the canonical ``(round, src, dst, seq)`` push key; pull sessions
   carry the per-source slot ``seq = k`` and are kept in ``(round, src,
   seq)`` order (their construction order).  Statistics and trace events
   are emitted in these orders.  This is the step that makes runs
   byte-identical regardless of shard count: whatever the partitioning or
   scheduling, the merged message sequence is the same.
3. **apply** (per partition, parallelizable) — every node integrates what
   the barrier assigned to it: eviction, sampler updates, blocking and
   view renewal, writing *new* state that becomes visible only at the next
   round.

Deliberate, documented differences from the legacy object engine (the
shard engine has its own differential suite — shards=1 vs shards=4 must be
byte-identical; it does not reproduce legacy byte streams):

* Trusted swaps never mutate a view mid-round; both halves of a swap land
  in the pulled pool and take effect at renewal (BSP discipline).
* Transport encryption is *modeled* as deterministic byte accounting
  (64 bytes framing + 8 per carried id per delivered leg) instead of
  running AES over pickled payloads.
* Min-wise samplers are fed only ids *new to the node* (duplicate feeds
  cannot change a min), and a sampler reset replays the node's known live
  ids under its fresh hash — the incremental form of "min over everything
  the node has observed".
* A sampler retains the lexicographically smallest ``(hash, id)`` pair —
  the id tiebreak (probability ~2^-31 per pair) makes both backends and
  any shard count agree exactly.

Backend strategy: the pure-Python paths are the readable reference; the
numpy paths compute the *same integers* wholesale — the push barrier as
one ``lexsort``, Brahms pull sessions as boolean leg masks over
``[nodes, β]`` key matrices, sampler feeds as a Mersenne-folded
``(a·r + b) mod p`` matrix min.  RAPTEE sessions keep the scalar planner
(the leg tree is deep and RAPTEE populations are comparatively small) but
integrate through the same vectorized apply tail.  Small differential
scenarios pin numpy == pure byte equality, which is what licenses the
vector paths at N = 10,000.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.minwise import MERSENNE_PRIME_31
from repro.shard.rand import Purpose, key64, keyed_order
from repro.shard.state import (
    EMPTY_SAMPLE,
    ShardConfig,
    ShardState,
    build_state,
    partition_bounds,
)
from repro.sim.network import NetworkStats

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

__all__ = ["ShardSimulation", "plan_partition", "apply_partition", "merge_plans"]

_P = MERSENNE_PRIME_31
_FLOAT_SCALE = 2.0 ** -53
#: Per-session leg indices (RAPTEE runs all eight, Brahms the pull pair).
_LEG_CH_FWD, _LEG_CH_REP = 0, 1
_LEG_CONF_FWD, _LEG_CONF_REP = 2, 3
_LEG_PULL_FWD, _LEG_PULL_REP = 4, 5
_LEG_SWAP_FWD, _LEG_SWAP_REP = 6, 7
_FRAME_BYTES = 64
_ID_BYTES = 8


def _leg_float(config: ShardConfig, round_no: int, src: int, k: int, leg: int) -> float:
    return (
        key64(config.seed, Purpose.SESSION_LOSS, round_no, src, k * 16 + leg) >> 11
    ) * _FLOAT_SCALE


@dataclass
class SessionResult:
    """Outcome of one pull session (src, slot k), fixed at plan time."""

    src: int
    k: int
    dst: int
    answered: bool = False
    trusted_batch: bool = False
    caller_swap: bool = False
    callee_effect: bool = False
    requests: int = 0
    replies: int = 0
    losses: int = 0
    enc_bytes: int = 0


@dataclass
class PartitionPlan:
    """Everything a partition's nodes emitted this round.

    Pure backend: parallel Python push lists plus :class:`SessionResult`
    objects.  numpy backend: ``push_arrays`` holds (src, seq, dst, ok)
    arrays, and Brahms sessions land in ``sess_arrays`` as (sources[m],
    dst[m, β], answered[m, β]); RAPTEE sessions stay scalar objects on
    both backends.  ``sess_*`` totals are summed at plan time either way.
    """

    lo: int
    hi: int
    push_src: List[int] = field(default_factory=list)
    push_seq: List[int] = field(default_factory=list)
    push_dst: List[int] = field(default_factory=list)
    push_ok: List[bool] = field(default_factory=list)
    push_arrays: Optional[Tuple] = None
    sessions: List[SessionResult] = field(default_factory=list)
    sess_arrays: Optional[Tuple] = None
    sess_requests: int = 0
    sess_replies: int = 0
    sess_losses: int = 0
    sess_bytes: int = 0


def _view_len_of(state: ShardState, node: int) -> int:
    return int(state.view_len[node])


def _view_entry(state: ShardState, node: int, index: int) -> int:
    return int(state.view[node][index])


def _fake_view_start(config: ShardConfig, round_no: int, caller: int, k: int) -> int:
    return key64(config.seed, Purpose.FAKE_VIEW, round_no, caller, k) % config.n_byzantine


def _fake_view(config: ShardConfig, round_no: int, caller: int, k: int) -> List[int]:
    """The adversary's pull answer: a rotating window of Byzantine ids."""
    n_byz = config.n_byzantine
    if n_byz == 0:
        return []
    start = _fake_view_start(config, round_no, caller, k)
    count = min(config.view_size, n_byz)
    return [(start + t) % n_byz for t in range(count)]


def _reply_len(config: ShardConfig, state: ShardState, dst: int) -> int:
    """Ids carried by ``dst``'s pull answer (for modeled encryption)."""
    if config.is_byzantine(dst):
        return min(config.view_size, config.n_byzantine) if config.n_byzantine else 0
    return _view_len_of(state, dst)


# -- plan phase ---------------------------------------------------------------


def _plan_session(config: ShardConfig, state: ShardState, round_no: int,
                  eff_loss: float, src: int, k: int, dst: int) -> SessionResult:
    """Scalar reference for one pull session (RAPTEE on both backends;
    Brahms on the pure backend — the vectorized Brahms path computes the
    same bits)."""
    result = SessionResult(src=src, k=k, dst=dst)
    dead = not state.is_alive(dst)
    encrypt = config.encrypt

    def lost(leg: int) -> bool:
        return eff_loss > 0.0 and _leg_float(config, round_no, src, k, leg) < eff_loss

    def wire(payload_ids: int) -> None:
        if encrypt:
            result.enc_bytes += _FRAME_BYTES + _ID_BYTES * payload_ids

    if config.protocol == "raptee":
        both_trusted = (
            config.trusted_exchange
            and config.is_trusted(src)
            and config.is_trusted(dst)
        )
        # Auth challenge.
        result.requests += 1
        if dead or lost(_LEG_CH_FWD):
            result.losses += 1
            return result
        wire(0)
        if lost(_LEG_CH_REP):
            result.losses += 1
            return result
        result.replies += 1
        wire(0)
        # Auth confirm: the responder registers the session only if the
        # confirm arrives; the confirm *reply* is informational.
        result.requests += 1
        conf_ok = not lost(_LEG_CONF_FWD)
        if not conf_ok:
            result.losses += 1
        else:
            wire(0)
            if lost(_LEG_CONF_REP):
                result.losses += 1
            else:
                result.replies += 1
                wire(0)
        # The Brahms pull itself.
        result.requests += 1
        if lost(_LEG_PULL_FWD):
            result.losses += 1
        else:
            wire(0)
            if lost(_LEG_PULL_REP):
                result.losses += 1
            else:
                result.replies += 1
                result.answered = True
                result.trusted_batch = both_trusted
                wire(_reply_len(config, state, dst))
        # Trusted swap: the caller attempts it whenever the peer proved
        # trust; the callee only honours it if the confirm registered.
        if both_trusted:
            result.requests += 1
            if lost(_LEG_SWAP_FWD):
                result.losses += 1
            elif conf_ok:
                wire(_view_len_of(state, src))
                result.callee_effect = True
                if lost(_LEG_SWAP_REP):
                    result.losses += 1
                else:
                    result.replies += 1
                    result.caller_swap = True
                    wire(_view_len_of(state, dst))
        return result

    # Brahms: one pull request, one reply.
    result.requests += 1
    if dead or lost(_LEG_PULL_FWD):
        result.losses += 1
        return result
    wire(0)
    if lost(_LEG_PULL_REP):
        result.losses += 1
        return result
    result.replies += 1
    result.answered = True
    wire(_reply_len(config, state, dst))
    return result


def plan_partition(
    config: ShardConfig,
    state: ShardState,
    round_no: int,
    eff_loss: float,
    lo: int,
    hi: int,
    adv_src: Sequence[int],
    adv_seq: Sequence[int],
    adv_dst: Sequence[int],
) -> PartitionPlan:
    """Phase 1 for partition ``[lo, hi)``: pure function of frozen state.

    ``adv_*`` are this partition's slice of the global Byzantine push
    assignment (already restricted to sources in ``[lo, hi)``).
    """
    plan = PartitionPlan(lo=lo, hi=hi)
    seed = config.seed
    n_byz = config.n_byzantine

    # Nodes that gossip this round: alive, correct, non-empty view.
    correct = [
        node for node in range(max(lo, n_byz), hi)
        if state.is_alive(node) and _view_len_of(state, node) > 0
    ]

    # Byzantine push loss draws (keyed, so any shard computes the same bit).
    byz_ok = [
        not (
            eff_loss > 0.0
            and (key64(seed, Purpose.PUSH_LOSS, round_no, src, seq) >> 11)
            * _FLOAT_SCALE < eff_loss
        )
        for src, seq in zip(adv_src, adv_seq)
    ]

    if state.use_numpy and np is not None:
        _plan_pushes_numpy(config, state, round_no, eff_loss, correct, plan,
                           adv_src, adv_seq, adv_dst, byz_ok)
        if config.protocol == "brahms":
            _plan_sessions_brahms_numpy(config, state, round_no, eff_loss,
                                        correct, plan)
            return plan
        dst_matrix = _pull_targets_numpy(config, state, round_no, correct)
    else:
        for node in correct:
            _plan_pushes_pure(config, state, round_no, eff_loss, node, plan)
        for src, seq, dst, ok in zip(adv_src, adv_seq, adv_dst, byz_ok):
            plan.push_src.append(src)
            plan.push_seq.append(seq)
            plan.push_dst.append(dst)
            plan.push_ok.append(ok and state.is_alive(dst))
        dst_matrix = None

    # Scalar pull sessions (RAPTEE, and Brahms on the pure backend).
    for row, node in enumerate(correct):
        for k in range(config.beta_count):
            if dst_matrix is not None:
                dst = int(dst_matrix[row, k])
            else:
                dst = _view_entry(
                    state, node,
                    key64(seed, Purpose.PULL_TARGET, round_no, node, k)
                    % _view_len_of(state, node),
                )
            plan.sessions.append(
                _plan_session(config, state, round_no, eff_loss, node, k, dst)
            )
    for session in plan.sessions:
        plan.sess_requests += session.requests
        plan.sess_replies += session.replies
        plan.sess_losses += session.losses
        plan.sess_bytes += session.enc_bytes
    return plan


def _plan_pushes_pure(config: ShardConfig, state: ShardState, round_no: int,
                      eff_loss: float, node: int, plan: PartitionPlan) -> None:
    view_len = _view_len_of(state, node)
    seed = config.seed
    for k in range(config.alpha_count):
        dst = _view_entry(
            state, node, key64(seed, Purpose.PUSH_TARGET, round_no, node, k) % view_len
        )
        lost = eff_loss > 0.0 and (
            (key64(seed, Purpose.PUSH_LOSS, round_no, node, k) >> 11) * _FLOAT_SCALE
            < eff_loss
        )
        plan.push_src.append(node)
        plan.push_seq.append(k)
        plan.push_dst.append(dst)
        plan.push_ok.append((not lost) and state.is_alive(dst))


def _plan_pushes_numpy(config: ShardConfig, state: ShardState, round_no: int,
                       eff_loss: float, correct: List[int], plan: PartitionPlan,
                       adv_src, adv_seq, adv_dst, byz_ok) -> None:
    from repro.shard.rand import key_array

    seed = config.seed
    if correct:
        nodes = np.asarray(correct, dtype=np.int64)
        slots = np.arange(config.alpha_count, dtype=np.uint64)[None, :]
        node_col = nodes.astype(np.uint64)[:, None]
        target_keys = key_array(seed, Purpose.PUSH_TARGET, round_no, node_col, slots)
        lens = state.view_len[nodes][:, None].astype(np.uint64)
        dst = state.view[nodes[:, None], (target_keys % lens).astype(np.int64)]
        if eff_loss > 0.0:
            loss_keys = key_array(seed, Purpose.PUSH_LOSS, round_no, node_col, slots)
            kept = ((loss_keys >> np.uint64(11)).astype(np.float64) * _FLOAT_SCALE
                    >= eff_loss)
        else:
            kept = np.ones(dst.shape, dtype=bool)
        ok = kept & state.alive[dst]
        count, width = dst.shape
        hsrc = np.repeat(nodes, width)
        hseq = np.tile(np.arange(width, dtype=np.int64), count)
        hdst = dst.ravel()
        hok = ok.ravel()
    else:
        hsrc = hseq = hdst = np.empty(0, dtype=np.int64)
        hok = np.empty(0, dtype=bool)
    bsrc = np.asarray(adv_src, dtype=np.int64)
    bseq = np.asarray(adv_seq, dtype=np.int64)
    bdst = np.asarray(adv_dst, dtype=np.int64)
    bok = np.asarray(byz_ok, dtype=bool)
    if bdst.size:
        bok = bok & state.alive[bdst]
    plan.push_arrays = (
        np.concatenate([hsrc, bsrc]),
        np.concatenate([hseq, bseq]),
        np.concatenate([hdst, bdst]),
        np.concatenate([hok, bok]),
    )


def _pull_targets_numpy(config: ShardConfig, state: ShardState, round_no: int,
                        correct: List[int]):
    from repro.shard.rand import key_array

    if not correct:
        return np.empty((0, config.beta_count), dtype=np.int64)
    nodes = np.asarray(correct, dtype=np.int64)
    slots = np.arange(config.beta_count, dtype=np.uint64)[None, :]
    node_col = nodes.astype(np.uint64)[:, None]
    keys = key_array(config.seed, Purpose.PULL_TARGET, round_no, node_col, slots)
    lens = state.view_len[nodes][:, None].astype(np.uint64)
    return state.view[nodes[:, None], (keys % lens).astype(np.int64)]


def _plan_sessions_brahms_numpy(config: ShardConfig, state: ShardState,
                                round_no: int, eff_loss: float,
                                correct: List[int], plan: PartitionPlan) -> None:
    """Vectorized Brahms sessions: the two leg masks of `_plan_session`,
    computed for the whole partition at once (identical bits)."""
    from repro.shard.rand import key_array

    dst = _pull_targets_numpy(config, state, round_no, correct)
    nodes = np.asarray(correct, dtype=np.int64)
    dead = ~state.alive[dst] if dst.size else np.zeros(dst.shape, dtype=bool)
    if eff_loss > 0.0 and dst.size:
        node_col = nodes.astype(np.uint64)[:, None]
        slots = np.arange(config.beta_count, dtype=np.uint64)[None, :] * np.uint64(16)
        fwd_keys = key_array(config.seed, Purpose.SESSION_LOSS, round_no,
                             node_col, slots + np.uint64(_LEG_PULL_FWD))
        rep_keys = key_array(config.seed, Purpose.SESSION_LOSS, round_no,
                             node_col, slots + np.uint64(_LEG_PULL_REP))
        fwd_lost = ((fwd_keys >> np.uint64(11)).astype(np.float64) * _FLOAT_SCALE
                    < eff_loss)
        rep_lost = ((rep_keys >> np.uint64(11)).astype(np.float64) * _FLOAT_SCALE
                    < eff_loss)
    else:
        fwd_lost = np.zeros(dst.shape, dtype=bool)
        rep_lost = np.zeros(dst.shape, dtype=bool)
    # Scalar reference: dead-or-forward-lost ends the session with one
    # loss; a lost reply is the second chance to lose; otherwise answered.
    fwd_fail = dead | fwd_lost
    rep_fail = ~fwd_fail & rep_lost
    answered = ~fwd_fail & ~rep_fail
    plan.sess_arrays = (nodes, dst, answered)
    plan.sess_requests = int(dst.size)
    plan.sess_replies = int(answered.sum())
    plan.sess_losses = int(fwd_fail.sum() + rep_fail.sum())
    if config.encrypt and dst.size:
        reply_ids = np.where(
            dst < config.n_byzantine,
            min(config.view_size, config.n_byzantine) if config.n_byzantine else 0,
            state.view_len[dst],
        )
        plan.sess_bytes = int(
            _FRAME_BYTES * (~fwd_fail).sum()
            + (answered * (_FRAME_BYTES + _ID_BYTES * reply_ids)).sum()
        )


# -- barrier ------------------------------------------------------------------


@dataclass
class Barrier:
    """The canonically ordered merge of every partition's plan."""

    use_numpy: bool
    #: Pure backend: delivered pushes per destination, in (src, seq) order.
    pushed: Dict[int, List[int]] = field(default_factory=dict)
    #: Sessions grouped per *caller*, in slot order (RAPTEE + pure Brahms).
    sessions_by_src: Dict[int, List[SessionResult]] = field(default_factory=dict)
    #: Callee-side swap effects per *destination*, in (caller, k) order.
    swaps_by_dst: Dict[int, List[SessionResult]] = field(default_factory=dict)
    #: numpy backend: full canonical (src, dst, seq, ok) push arrays ...
    push_canonical: Optional[Tuple] = None
    #: ... and the delivered subset re-sorted by (dst, src, seq), with the
    #: destination column first — the apply phase's delivery index.
    push_by_dst: Optional[Tuple] = None
    #: Vectorized Brahms sessions: (sources[m], dst[m, β], answered[m, β]),
    #: sources ascending.
    sess_arrays: Optional[Tuple] = None
    pushes_sent: int = 0
    pushes_delivered: int = 0
    requests_sent: int = 0
    replies_delivered: int = 0
    messages_lost: int = 0
    enc_bytes: int = 0
    #: Pure backend: canonically sorted (src, dst, seq, ok) for tracing.
    push_order: List[Tuple[int, int, int, bool]] = field(default_factory=list)


def merge_plans(plans: Sequence[PartitionPlan], use_numpy: bool = False) -> Barrier:
    """Phase 2: the deterministic cross-shard ordering barrier.

    Pushes are merged and stably sorted by ``(round, src, dst, seq)``
    (round is constant inside a barrier); pull sessions carry the unique
    per-source slot ``seq = k``, so their construction order — sources
    ascending across partitions, slots ascending within a source — already
    *is* the ``(round, src, seq)`` order and needs no re-sort.  Every
    downstream consumer (stats, traces, per-destination delivery) iterates
    these canonical orders, so nothing can depend on how the plans were
    partitioned or scheduled.
    """
    barrier = Barrier(use_numpy=use_numpy)
    lost_pushes = 0
    if use_numpy and np is not None:
        src = np.concatenate([p.push_arrays[0] for p in plans])
        seq = np.concatenate([p.push_arrays[1] for p in plans])
        dst = np.concatenate([p.push_arrays[2] for p in plans])
        ok = np.concatenate([p.push_arrays[3] for p in plans])
        order = np.lexsort((seq, dst, src))
        src, seq, dst, ok = src[order], seq[order], dst[order], ok[order]
        barrier.push_canonical = (src, dst, seq, ok)
        dsrc, dseq, ddst = src[ok], seq[ok], dst[ok]
        delivery = np.lexsort((dseq, dsrc, ddst))
        barrier.push_by_dst = (ddst[delivery], dsrc[delivery])
        barrier.pushes_sent = int(src.size)
        barrier.pushes_delivered = int(ddst.size)
        lost_pushes = barrier.pushes_sent - barrier.pushes_delivered
    else:
        records: List[Tuple[int, int, int, bool]] = []
        for plan in plans:
            records.extend(
                zip(plan.push_src, plan.push_dst, plan.push_seq, plan.push_ok)
            )
        records.sort(key=lambda rec: (rec[0], rec[1], rec[2]))
        barrier.push_order = records
        for src_id, dst_id, _seq, delivered in records:
            if delivered:
                barrier.pushes_delivered += 1
                barrier.pushed.setdefault(dst_id, []).append(src_id)
            else:
                lost_pushes += 1
        barrier.pushes_sent = len(records)
        # Delivery lists are in (src, seq) order per destination: the sort
        # above is (src, dst, seq) and appends preserve it per dst.

    if plans and plans[0].sess_arrays is not None:
        barrier.sess_arrays = (
            np.concatenate([p.sess_arrays[0] for p in plans]),
            np.concatenate([p.sess_arrays[1] for p in plans]),
            np.concatenate([p.sess_arrays[2] for p in plans]),
        )
    swaps: List[SessionResult] = []
    for plan in plans:
        for session in plan.sessions:
            barrier.sessions_by_src.setdefault(session.src, []).append(session)
            if session.callee_effect:
                swaps.append(session)
        barrier.requests_sent += plan.sess_requests
        barrier.replies_delivered += plan.sess_replies
        barrier.enc_bytes += plan.sess_bytes
        barrier.messages_lost += plan.sess_losses
    barrier.messages_lost += lost_pushes
    swaps.sort(key=lambda s: (s.dst, s.src, s.k))
    for session in swaps:
        barrier.swaps_by_dst.setdefault(session.dst, []).append(session)
    return barrier


def _pushed_sources(barrier: Barrier, node: int):
    """Delivered push sources for ``node``, in (src, seq) order."""
    if barrier.push_by_dst is not None:
        ddst, dsrc = barrier.push_by_dst
        start = int(np.searchsorted(ddst, node, side="left"))
        end = int(np.searchsorted(ddst, node, side="right"))
        return dsrc[start:end]
    return barrier.pushed.get(node, ())


# -- apply phase --------------------------------------------------------------


@dataclass
class PartitionDelta:
    """State changes computed by one partition's apply pass."""

    lo: int
    hi: int
    new_views: List[Tuple[int, Sequence[int]]] = field(default_factory=list)
    #: Per node: (node, sampler index sequence, packed value sequence).
    samp_updates: List[Tuple[int, Sequence[int], Sequence[int]]] = field(
        default_factory=list
    )
    samp_resets: List[Tuple[int, int, int, int, int]] = field(default_factory=list)
    known_additions: List[Tuple[int, Sequence[int]]] = field(default_factory=list)
    renewals: int = 0
    blocked: int = 0
    evicted: int = 0
    trusted_exchanges: int = 0
    sampler_resets: int = 0


def _fold_mod_p(x):
    """Exact ``x mod p`` for p = 2^31 − 1 via two folds (2^31 ≡ 1 mod p);
    valid for 0 <= x < 2^62, which ``a·r + b`` with a, b, r < p satisfies."""
    mask = np.int64(_P)
    y = (x >> np.int64(31)) + (x & mask)
    z = (y >> np.int64(31)) + (y & mask)
    return np.where(z >= _P, z - _P, z)


def _sampler_feed_numpy(state: ShardState, node: int, cand,
                        delta: PartitionDelta) -> None:
    reduced = state.reduced[cand]
    hashed = _fold_mod_p(
        state.samp_a[node][:, None] * reduced[None, :]
        + state.samp_b[node][:, None]
    )
    packed = (hashed << np.int64(32)) | cand[None, :]
    best = packed.min(axis=1)
    improved = best < state.samp_best[node]
    if improved.any():
        slots = np.flatnonzero(improved)
        delta.samp_updates.append((node, slots, best[slots]))


def _sampler_feed_pure(config: ShardConfig, state: ShardState, node: int,
                       candidates: List[int], delta: PartitionDelta) -> None:
    a_row, b_row = state.samp_a[node], state.samp_b[node]
    current = state.samp_best[node]
    slots: List[int] = []
    values: List[int] = []
    for j in range(config.sample_size):
        a, b = a_row[j], b_row[j]
        best = current[j]
        for cand in candidates:
            packed = (((a * state.reduced[cand] + b) % _P) << 32) | cand
            if packed < best:
                best = packed
        if best != current[j]:
            slots.append(j)
            values.append(best)
    if slots:
        delta.samp_updates.append((node, slots, values))


def _keyed_subset(config: ShardConfig, round_no: int, purpose: int, node: int,
                  items: List[int], count: int) -> List[int]:
    """``count`` distinct items, uniform via per-index keys, kept in their
    original order (deterministic replacement for ``rng.sample``)."""
    if count >= len(items):
        return list(items)
    indexed = sorted(
        range(len(items)),
        key=lambda idx: (key64(config.seed, purpose, round_no, node, idx), idx),
    )[:count]
    indexed.sort()
    return [items[idx] for idx in indexed]


def _keyed_subset_numpy(config: ShardConfig, round_no: int, purpose: int,
                        node: int, items, count: int):
    """Vectorized `_keyed_subset`: a stable argsort on the keys breaks
    ties by index, exactly like the scalar ``(key, idx)`` sort."""
    if count >= len(items):
        return items
    from repro.shard.rand import key_array

    keys = key_array(config.seed, purpose, round_no, np.uint64(node),
                     np.arange(len(items), dtype=np.uint64))
    chosen = np.argsort(keys, kind="stable")[:count]
    chosen.sort()
    return items[chosen]


def apply_partition(
    config: ShardConfig,
    state: ShardState,
    round_no: int,
    lo: int,
    hi: int,
    barrier: Barrier,
) -> PartitionDelta:
    """Phase 3 for partition ``[lo, hi)``: integrate the barrier's output.

    Reads only frozen state plus the barrier; writes land in the returned
    delta, applied by the engine once every partition finished (so no
    partition ever observes another's round-``r`` effects during round
    ``r``).
    """
    delta = PartitionDelta(lo=lo, hi=hi)
    validate = (
        config.validation_period > 0
        and round_no % config.validation_period == 0
    )
    if validate:
        # Sampler validation only ever resets a sampler anchored on a dead
        # id; with everyone alive it is a (huge) no-op — skip the scan.
        if state.use_numpy:
            validate = not bool(state.alive.all())
        else:
            validate = not all(state.alive)

    if state.use_numpy and np is not None:
        _apply_nodes_numpy(config, state, round_no, lo, hi, barrier, delta,
                           validate)
    else:
        _apply_nodes_pure(config, state, round_no, lo, hi, barrier, delta,
                          validate)
    return delta


def _apply_nodes_pure(config, state, round_no, lo, hi, barrier, delta,
                      validate) -> None:
    seed = config.seed
    for node in range(max(lo, config.n_byzantine), hi):
        if not state.is_alive(node):
            continue
        pushed = [src for src in _pushed_sources(barrier, node) if src != node]
        sessions = barrier.sessions_by_src.get(node, ())

        # Assemble pulled batches: own pull answers (slot order), the
        # caller half of a swap right after its session's pull batch, then
        # callee-side swap effects in (caller, k) order.
        batches: List[Tuple[List[int], bool]] = []
        contacts = 0
        trusted_contacts = 0
        for session in sessions:
            if session.answered:
                if config.is_byzantine(session.dst):
                    ids = _fake_view(config, round_no, node, session.k)
                else:
                    ids = state.view_row(session.dst)
                batches.append((ids, session.trusted_batch))
                contacts += 1
                if session.trusted_batch:
                    trusted_contacts += 1
            if session.caller_swap:
                batches.append((state.view_row(session.dst), True))
                delta.trusted_exchanges += 1
        for session in barrier.swaps_by_dst.get(node, ()):
            batches.append((state.view_row(session.src), True))
            contacts += 1
            trusted_contacts += 1

        # Byzantine eviction (§IV-C) on the untrusted portion.
        trusted_ids: List[int] = []
        untrusted_ids: List[int] = []
        for ids, trusted in batches:
            bucket = trusted_ids if trusted else untrusted_ids
            bucket.extend(pid for pid in ids if pid != node)
        if (
            config.eviction_kind != "none"
            and config.is_trusted(node)
            and untrusted_ids
        ):
            share = trusted_contacts / contacts if contacts else 0.0
            rate = config.eviction_rate(share)
            keep = len(untrusted_ids) - int(round(rate * len(untrusted_ids)))
            delta.evicted += len(untrusted_ids) - max(0, keep)
            if keep <= 0:
                untrusted_ids = []
            else:
                untrusted_ids = _keyed_subset(
                    config, round_no, Purpose.EVICT_KEEP, node, untrusted_ids, keep
                )
        pulled = trusted_ids + untrusted_ids

        # Samplers: feed only ids this node has never observed (duplicate
        # feeds are no-ops for a min), then remember them.
        fresh = sorted(set(pushed + pulled) - state.known[node])
        if fresh:
            _sampler_feed_pure(config, state, node, fresh, delta)
            delta.known_additions.append((node, fresh))

        # Blocking defense and view renewal.
        blocked = config.blocking_enabled and len(pushed) > config.alpha_count
        if blocked:
            delta.blocked += 1
        if not blocked and pushed and pulled:
            unique_pushed = list(dict.fromkeys(pushed))
            alpha_part = _keyed_subset(
                config, round_no, Purpose.RENEW_PUSH, node,
                unique_pushed, config.alpha_count,
            )
            beta_part = [
                pulled[key64(seed, Purpose.RENEW_PULL, round_no, node, t) % len(pulled)]
                for t in range(config.beta_count)
            ]
            gamma_part: List[int] = []
            samples = state.sample_ids(node)
            if samples:
                gamma_part = [
                    samples[
                        key64(seed, Purpose.RENEW_GAMMA, round_no, node, t)
                        % len(samples)
                    ]
                    for t in range(config.gamma_count)
                ]
            delta.new_views.append((node, alpha_part + beta_part + gamma_part))
            delta.renewals += 1

        # Periodic sampler liveness validation (uses start-of-round
        # liveness, like everything else in the round).
        if validate:
            _validate_samplers(config, state, round_no, node, fresh, delta)


def _apply_nodes_numpy(config, state, round_no, lo, hi, barrier, delta,
                       validate) -> None:
    """The numpy twin of `_apply_nodes_pure`: same per-node traversal, but
    batches stay arrays (no-copy view slices) end to end.  Bucket, stream
    and draw orders are element-identical to the pure path."""
    from repro.shard.rand import key_array

    seed = config.seed
    n_byz = config.n_byzantine
    fake_count = min(config.view_size, n_byz) if n_byz else 0
    fake_window = np.arange(fake_count, dtype=np.int64)
    beta_slots = np.arange(config.beta_count, dtype=np.uint64)
    gamma_slots = np.arange(config.gamma_count, dtype=np.uint64)
    empty = np.empty(0, dtype=np.int64)
    bsrc = bdst = bans = None
    if barrier.sess_arrays is not None:
        bsrc, bdst, bans = barrier.sess_arrays

    for node in range(max(lo, n_byz), hi):
        if not state.alive[node]:
            continue
        pushed = _pushed_sources(barrier, node)
        pushed = pushed[pushed != node]

        # Pulled batches in slot order, each an id array + trusted flag;
        # the pure path builds the same batches as lists.
        trusted_parts: List = []
        untrusted_parts: List = []
        contacts = 0
        trusted_contacts = 0
        if bsrc is not None and bsrc.size:
            row = int(np.searchsorted(bsrc, node))
            if row < bsrc.size and bsrc[row] == node:
                for k in np.flatnonzero(bans[row]):
                    dst = int(bdst[row, k])
                    if dst < n_byz:
                        start = _fake_view_start(config, round_no, node, int(k))
                        ids = (start + fake_window) % n_byz
                    else:
                        ids = state.view[dst, : state.view_len[dst]]
                    untrusted_parts.append(ids)
                    contacts += 1
        for session in barrier.sessions_by_src.get(node, ()):
            if session.answered:
                dst = session.dst
                if dst < n_byz:
                    start = _fake_view_start(config, round_no, node, session.k)
                    ids = (start + fake_window) % n_byz
                else:
                    ids = state.view[dst, : state.view_len[dst]]
                (trusted_parts if session.trusted_batch
                 else untrusted_parts).append(ids)
                contacts += 1
                if session.trusted_batch:
                    trusted_contacts += 1
            if session.caller_swap:
                dst = session.dst
                trusted_parts.append(state.view[dst, : state.view_len[dst]])
                delta.trusted_exchanges += 1
        for session in barrier.swaps_by_dst.get(node, ()):
            src = session.src
            trusted_parts.append(state.view[src, : state.view_len[src]])
            contacts += 1
            trusted_contacts += 1

        trusted_ids = np.concatenate(trusted_parts) if trusted_parts else empty
        untrusted_ids = (
            np.concatenate(untrusted_parts) if untrusted_parts else empty
        )
        # Self-filter after concatenation == per-batch filter (order kept).
        trusted_ids = trusted_ids[trusted_ids != node]
        untrusted_ids = untrusted_ids[untrusted_ids != node]
        if (
            config.eviction_kind != "none"
            and config.is_trusted(node)
            and untrusted_ids.size
        ):
            share = trusted_contacts / contacts if contacts else 0.0
            rate = config.eviction_rate(share)
            total = int(untrusted_ids.size)
            keep = total - int(round(rate * total))
            delta.evicted += total - max(0, keep)
            if keep <= 0:
                untrusted_ids = empty
            else:
                untrusted_ids = _keyed_subset_numpy(
                    config, round_no, Purpose.EVICT_KEEP, node,
                    untrusted_ids, keep,
                )
        pulled = np.concatenate([trusted_ids, untrusted_ids])

        stream = np.concatenate([pushed, pulled])
        if stream.size:
            novel = stream[~state.known[node, stream]]
            fresh = np.unique(novel) if novel.size else empty
        else:
            fresh = empty
        if fresh.size:
            _sampler_feed_numpy(state, node, fresh, delta)
            delta.known_additions.append((node, fresh))

        blocked = config.blocking_enabled and pushed.size > config.alpha_count
        if blocked:
            delta.blocked += 1
        if not blocked and pushed.size and pulled.size:
            unique_pushed = list(dict.fromkeys(pushed.tolist()))
            alpha_part = np.asarray(
                _keyed_subset(
                    config, round_no, Purpose.RENEW_PUSH, node,
                    unique_pushed, config.alpha_count,
                ),
                dtype=np.int64,
            )
            beta_keys = key_array(seed, Purpose.RENEW_PULL, round_no,
                                  np.uint64(node), beta_slots)
            beta_part = pulled[
                (beta_keys % np.uint64(pulled.size)).astype(np.int64)
            ]
            packed_row = state.samp_best[node]
            samples = (packed_row[packed_row != EMPTY_SAMPLE]
                       & np.int64(0xFFFFFFFF))
            if samples.size and config.gamma_count:
                gamma_keys = key_array(seed, Purpose.RENEW_GAMMA, round_no,
                                       np.uint64(node), gamma_slots)
                gamma_part = samples[
                    (gamma_keys % np.uint64(samples.size)).astype(np.int64)
                ]
            else:
                gamma_part = empty
            delta.new_views.append(
                (node, np.concatenate([alpha_part, beta_part, gamma_part]))
            )
            delta.renewals += 1

        if validate:
            _validate_samplers(config, state, round_no, node,
                               [int(v) for v in fresh], delta)


def _validate_samplers(config: ShardConfig, state: ShardState, round_no: int,
                       node: int, fresh: List[int], delta: PartitionDelta) -> None:
    """Reset samplers anchored on dead ids; replay known live ids so the
    fresh hash function still ranges over everything the node observed."""
    replay: Optional[List[int]] = None
    for j in range(config.sample_size):
        packed = int(state.samp_best[node][j])
        if packed == EMPTY_SAMPLE:
            continue
        current = packed & 0xFFFFFFFF
        if state.is_alive(current):
            continue
        new_a = 1 + key64(
            config.seed, Purpose.SAMPLER_RESET_A, round_no, node, j
        ) % (_P - 1)
        new_b = key64(
            config.seed, Purpose.SAMPLER_RESET_B, round_no, node, j
        ) % _P
        if replay is None:
            replay = _known_live(state, node, fresh)
        best = EMPTY_SAMPLE
        for cand in replay:
            packed_cand = (((new_a * int(state.reduced[cand]) + new_b) % _P) << 32) | cand
            if packed_cand < best:
                best = packed_cand
        delta.samp_resets.append((node, j, new_a, new_b, best))
        delta.sampler_resets += 1


def _known_live(state: ShardState, node: int, fresh: List[int]) -> List[int]:
    """The node's observed ids (including this round's) that are alive."""
    if state.use_numpy:
        known = np.flatnonzero(state.known[node])
        merged = np.union1d(known, np.asarray(fresh, dtype=np.int64)) if fresh else known
        live = merged[state.alive[merged.astype(np.int64)]]
        return [int(v) for v in live]
    merged = set(state.known[node])
    merged.update(fresh)
    return sorted(c for c in merged if state.is_alive(c))


# -- the driver ---------------------------------------------------------------


class ShardSimulation:
    """Drives :class:`ShardState` through bulk-synchronous rounds.

    ``shards`` controls partitioning, ``workers`` how many processes run
    the partition phases (``<= 1`` → inline).  Both are *performance*
    knobs: the barrier makes every output byte-identical across any
    combination — that is the property the shard differential suite pins.
    """

    def __init__(
        self,
        config: ShardConfig,
        shards: int = 1,
        workers: int = 1,
        use_numpy: Optional[bool] = None,
        telemetry=None,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.config = config
        self.shards = shards
        self.workers = workers
        self.state = build_state(config, use_numpy=use_numpy)
        self.stats = NetworkStats()
        self.round_number = 0
        self.telemetry = telemetry
        self.trace_records: List[Dict[str, object]] = []
        self._bounds = partition_bounds(config.n_nodes, shards)

    # -- faults ---------------------------------------------------------------

    def _apply_crash_schedule(self) -> None:
        for node, at_round, down_rounds in self.config.crashes:
            if self.round_number == at_round:
                self.state.alive[node] = False
                self._emit("shard.crash", node=node)
            elif self.round_number == at_round + down_rounds:
                self.state.alive[node] = True
                self._emit("shard.restart", node=node)

    def _effective_loss(self) -> float:
        keep = 1.0 - self.config.loss_rate
        for first, last, rate in self.config.loss_bursts:
            if first <= self.round_number <= last:
                keep *= 1.0 - rate
        return 1.0 - keep

    # -- adversary ------------------------------------------------------------

    def _adversary_assignment(self) -> Tuple[List[int], List[int], List[int]]:
        """The balanced attack: spread the adversary's whole push budget
        evenly over the correct population (deterministic multiset)."""
        config, state = self.config, self.state
        byz_alive = [b for b in range(config.n_byzantine) if state.is_alive(b)]
        correct_alive = [
            node for node in range(config.n_byzantine, config.n_nodes)
            if state.is_alive(node)
        ]
        if not byz_alive or not correct_alive:
            return [], [], []
        limit = config.byz_push_limit
        total = len(byz_alive) * limit
        perm = keyed_order(
            correct_alive, config.seed, Purpose.ADV_ORDER, self.round_number
        )
        quota, remainder = divmod(total, len(perm))
        pool: List[int] = []
        for index, victim in enumerate(perm):
            pool.extend([victim] * (quota + (1 if index < remainder else 0)))
        src: List[int] = []
        seq: List[int] = []
        dst: List[int] = []
        for b_index, byz in enumerate(byz_alive):
            share = pool[b_index * limit:(b_index + 1) * limit]
            src.extend([byz] * len(share))
            seq.extend(range(len(share)))
            dst.extend(share)
        return src, seq, dst

    # -- telemetry ------------------------------------------------------------

    def _emit(self, name: str, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.event(name, **fields)

    def _count(self, name: str, amount: int, **labels: object) -> None:
        if self.telemetry is not None and amount:
            self.telemetry.counter(name, **labels).inc(amount)

    # -- rounds ---------------------------------------------------------------

    def run_round(self) -> None:
        self.round_number += 1
        round_no = self.round_number
        if self.telemetry is not None:
            self.telemetry.begin_round(round_no)
        self._apply_crash_schedule()
        eff_loss = self._effective_loss()
        adv_src, adv_seq, adv_dst = self._adversary_assignment()

        plans = self._run_plans(round_no, eff_loss, adv_src, adv_seq, adv_dst)
        barrier = merge_plans(plans, self.state.use_numpy)
        self._record_barrier(round_no, barrier)
        deltas = self._run_applies(round_no, barrier)
        self._integrate(deltas)
        self._close_round(round_no, barrier, deltas)

    def _run_plans(self, round_no, eff_loss, adv_src, adv_seq, adv_dst):
        tasks = []
        for lo, hi in self._bounds:
            indices = [
                i for i, src in enumerate(adv_src) if lo <= src < hi
            ]
            tasks.append((
                self.config, self.state, round_no, eff_loss, lo, hi,
                [adv_src[i] for i in indices],
                [adv_seq[i] for i in indices],
                [adv_dst[i] for i in indices],
            ))
        from repro.shard.pool import map_partitions

        return map_partitions(plan_partition, tasks, self.workers)

    def _run_applies(self, round_no: int, barrier: Barrier):
        tasks = [
            (self.config, self.state, round_no, lo, hi, barrier)
            for lo, hi in self._bounds
        ]
        from repro.shard.pool import map_partitions

        return map_partitions(apply_partition, tasks, self.workers)

    def _integrate(self, deltas: Sequence[PartitionDelta]) -> None:
        state = self.state
        for delta in deltas:
            for node, row in delta.new_views:
                state.set_view_row(node, row)
            for node, slots, packed in delta.samp_updates:
                if state.use_numpy:
                    state.samp_best[node][slots] = packed
                else:
                    for j, value in zip(slots, packed):
                        state.samp_best[node][j] = value
            for node, j, new_a, new_b, packed in delta.samp_resets:
                state.samp_a[node][j] = new_a
                state.samp_b[node][j] = new_b
                state.samp_best[node][j] = packed
            for node, fresh in delta.known_additions:
                if state.use_numpy:
                    state.known[node, fresh] = True
                else:
                    state.known[node].update(fresh)
            state.renewals += delta.renewals
            state.blocked_rounds += delta.blocked
            state.evicted_ids += delta.evicted
            state.trusted_exchanges += delta.trusted_exchanges
            state.sampler_resets += delta.sampler_resets

    def _record_barrier(self, round_no: int, barrier: Barrier) -> None:
        stats = self.stats
        stats.pushes_sent += barrier.pushes_sent
        stats.pushes_delivered += barrier.pushes_delivered
        stats.requests_sent += barrier.requests_sent
        stats.replies_delivered += barrier.replies_delivered
        stats.messages_lost += barrier.messages_lost
        stats.bytes_encrypted += barrier.enc_bytes
        stats.per_round_pushes[round_no] += barrier.pushes_sent
        stats.per_round_requests[round_no] += barrier.requests_sent
        stats.per_round_losses[round_no] += barrier.messages_lost
        self._count("network.pushes_sent", barrier.pushes_sent)
        self._count("network.pushes_delivered", barrier.pushes_delivered)
        self._count("network.messages_lost", barrier.messages_lost)
        self._count("network.requests_sent", barrier.requests_sent, kind="session")
        self._count("network.replies_delivered", barrier.replies_delivered,
                    kind="session")
        telemetry = self.telemetry
        if telemetry is None or not telemetry.config.trace_messages:
            return
        # Message tracing iterates the canonical orders scalar-wise; meant
        # for the small pinned differential scenarios, not N = 10,000.
        if barrier.push_canonical is not None:
            psrc, pdst, _pseq, pok = barrier.push_canonical
            for i in range(psrc.size):
                telemetry.event("net.push", node=int(psrc[i]), dst=int(pdst[i]),
                                delivered=bool(pok[i]))
        else:
            for src_id, dst_id, _seq, ok in barrier.push_order:
                telemetry.event("net.push", node=src_id, dst=dst_id,
                                delivered=bool(ok))
        if barrier.sess_arrays is not None:
            bsrc, bdst, bans = barrier.sess_arrays
            for row in range(bsrc.size):
                for k in range(bdst.shape[1]):
                    telemetry.event(
                        "net.request",
                        node=int(bsrc[row]),
                        dst=int(bdst[row, k]),
                        delivered=bool(bans[row, k]),
                        swap=False,
                    )
        for src_id in sorted(barrier.sessions_by_src):
            for session in barrier.sessions_by_src[src_id]:
                telemetry.event(
                    "net.request",
                    node=session.src,
                    dst=session.dst,
                    delivered=session.answered,
                    swap=session.callee_effect,
                )

    def _close_round(self, round_no: int, barrier: Barrier,
                     deltas: Sequence[PartitionDelta]) -> None:
        byz_entries, total_entries = self._view_poll()
        byz_share = byz_entries / total_entries if total_entries else 0.0
        record = {
            "round": round_no,
            "pushes": barrier.pushes_sent,
            "requests": barrier.requests_sent,
            "losses": barrier.messages_lost,
            "renewals": sum(d.renewals for d in deltas),
            "blocked": sum(d.blocked for d in deltas),
            "evicted": sum(d.evicted for d in deltas),
            "byz_entries": byz_entries,
            "view_entries": total_entries,
        }
        self.trace_records.append(record)
        if self.telemetry is not None:
            self.telemetry.gauge("shard.byz_view_share").set(byz_share)
            self.telemetry.event("round.stats", **record)
            if self.state.use_numpy:
                alive = int(self.state.alive.sum())
            else:
                alive = sum(1 for flag in self.state.alive if flag)
            self.telemetry.end_round(alive)

    def _view_poll(self) -> Tuple[int, int]:
        """(Byzantine entries, total entries) across correct alive views."""
        config, state = self.config, self.state
        byz_entries = 0
        total = 0
        if state.use_numpy:
            lens = state.view_len[config.n_byzantine:]
            alive = state.alive[config.n_byzantine:]
            rows = state.view[config.n_byzantine:]
            valid = (
                np.arange(rows.shape[1])[None, :] < lens[:, None]
            ) & alive[:, None]
            byz_entries = int(((rows < config.n_byzantine) & valid & (rows >= 0)).sum())
            total = int(lens[alive].sum())
        else:
            for node in range(config.n_byzantine, config.n_nodes):
                if not state.is_alive(node):
                    continue
                row = state.view[node]
                byz_entries += sum(1 for v in row if v < config.n_byzantine)
                total += len(row)
        return byz_entries, total

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    # -- outputs --------------------------------------------------------------

    def final_views(self) -> Dict[int, List[int]]:
        """Every correct node's view, in id order (byte-compare surface)."""
        return {
            node: self.state.view_row(node)
            for node in range(self.config.n_byzantine, self.config.n_nodes)
        }
