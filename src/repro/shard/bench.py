# lint: disable-file=det-wall-clock -- the benchmark harness exists to
# measure wall-clock; its numbers go to BENCH_shard.json, never into the
# protocol or the deterministic trace/metrics surface.
"""Pinned shard-engine benchmarks and the ``BENCH_shard.json`` report.

Two pinned scenarios track the tentpole targets:

* ``raptee-1k-shard`` — the same topology as the legacy harness's
  ``raptee-1k`` headline (N = 1,000, paper view ratio, full transport
  encryption, 50 rounds).  Its ``speedup_vs_legacy`` compares against the
  *pinned* 8.2 s/round the per-node engine costs on that scenario
  (:data:`LEGACY_RAPTEE_1K_SECONDS_PER_ROUND`); the acceptance bar is 3×.
* ``brahms-10k`` — the paper's full N = 10,000 population with the
  paper's l1 = 200 view (ratio 0.02).  Per-round wall-clock is recorded
  round by round: the first round pays the one-time sampler flood (every
  node feeds thousands of never-seen ids through l2 min-wise samplers),
  so the report carries ``first_round_seconds`` separately from the
  ``steady_seconds_per_round`` mean over the remaining rounds — the
  number the "seconds-per-round at N = 10,000" target reads.

The report payload is a plain dict; :func:`validate_shard_report` is the
schema gate CI runs against the generated artifact, and the builders here
return data — file I/O stays in the CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.experiments.scenarios import TopologySpec
from repro.perf.kernels import HAVE_NUMPY
from repro.shard.compile import shard_config_from_topology
from repro.shard.engine import ShardSimulation

__all__ = [
    "ShardBenchScenario",
    "SHARD_BENCH_SCENARIOS",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "LEGACY_RAPTEE_1K_SECONDS_PER_ROUND",
    "run_shard_scenario",
    "run_shard_bench",
    "validate_shard_report",
    "render_shard_report",
]

SCHEMA_NAME = "repro-bench-shard"
SCHEMA_VERSION = 1

#: What the legacy per-node engine costs on the raptee-1k scenario
#: (measured by the PR 4 harness; the tentpole bar is ≥ 3× under this).
LEGACY_RAPTEE_1K_SECONDS_PER_ROUND = 8.2


@dataclass(frozen=True)
class ShardBenchScenario:
    """One pinned shard-engine benchmark configuration."""

    name: str
    protocol: str  # "brahms" | "raptee"
    n_nodes: int
    rounds: int
    shards: int
    byzantine_fraction: float = 0.10
    trusted_fraction: float = 0.0
    view_ratio: float = 0.02
    loss_rate: float = 0.0
    transport_encryption: bool = False
    seed: int = 1
    #: Pinned legacy s/round to compare against (None → no comparison).
    legacy_seconds_per_round: Optional[float] = None

    def smoke(self) -> "ShardBenchScenario":
        """A seconds-scale variant for CI: same shape, tiny population."""
        return replace(
            self,
            n_nodes=min(self.n_nodes, 200),
            rounds=min(self.rounds, 5),
            # Tiny populations need proportionally bigger views to stay
            # above the protocol's minimum sizes.
            view_ratio=max(self.view_ratio, 0.08),
        )

    def build(self) -> ShardSimulation:
        topology = TopologySpec(
            n_nodes=self.n_nodes,
            byzantine_fraction=self.byzantine_fraction,
            trusted_fraction=(
                self.trusted_fraction if self.protocol == "raptee" else 0.0
            ),
            view_ratio=self.view_ratio,
            loss_rate=self.loss_rate,
            transport_encryption=self.transport_encryption,
        )
        config = shard_config_from_topology(
            topology, self.seed, protocol=self.protocol,
            brahms=topology.brahms_config().scaled(
                self.n_nodes, view_ratio=self.view_ratio
            ),
        )
        return ShardSimulation(config, shards=self.shards)

    def config_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "rounds": self.rounds,
            "shards": self.shards,
            "byzantine_fraction": self.byzantine_fraction,
            "trusted_fraction": self.trusted_fraction,
            "view_ratio": self.view_ratio,
            "loss_rate": self.loss_rate,
            "transport_encryption": self.transport_encryption,
            "seed": self.seed,
        }


#: The pinned suite (see the module docstring for what each tracks).
SHARD_BENCH_SCENARIOS: Dict[str, ShardBenchScenario] = {
    scenario.name: scenario
    for scenario in (
        ShardBenchScenario(
            name="raptee-1k-shard", protocol="raptee",
            n_nodes=1000, rounds=50, shards=4,
            trusted_fraction=0.01, view_ratio=0.02,
            transport_encryption=True,
            legacy_seconds_per_round=LEGACY_RAPTEE_1K_SECONDS_PER_ROUND,
        ),
        ShardBenchScenario(
            name="brahms-10k", protocol="brahms",
            n_nodes=10000, rounds=5, shards=8,
            view_ratio=0.02, loss_rate=0.01,
        ),
    )
}


def run_shard_scenario(scenario: ShardBenchScenario) -> Dict[str, object]:
    """Benchmark one scenario; returns its report entry."""
    start = time.perf_counter()
    simulation = scenario.build()
    bootstrap_seconds = time.perf_counter() - start
    round_seconds: List[float] = []
    for _ in range(scenario.rounds):
        tick = time.perf_counter()
        simulation.run_round()
        round_seconds.append(time.perf_counter() - tick)
    wall = sum(round_seconds)
    steady = round_seconds[1:] or round_seconds
    stats = simulation.stats
    entry: Dict[str, object] = {
        "name": scenario.name,
        "config": scenario.config_dict(),
        "rounds": scenario.rounds,
        "shards": scenario.shards,
        "bootstrap_seconds": bootstrap_seconds,
        "wall_seconds": wall,
        "seconds_per_round": wall / scenario.rounds,
        "first_round_seconds": round_seconds[0],
        "steady_seconds_per_round": sum(steady) / len(steady),
        "round_seconds": round_seconds,
        "ops_per_round": {
            "pushes": stats.pushes_sent / scenario.rounds,
            "requests": stats.requests_sent / scenario.rounds,
        },
        "bytes_encrypted": stats.bytes_encrypted,
    }
    if scenario.legacy_seconds_per_round is not None:
        entry["legacy_seconds_per_round"] = scenario.legacy_seconds_per_round
        entry["speedup_vs_legacy"] = (
            scenario.legacy_seconds_per_round / (wall / scenario.rounds)
        )
    return entry


def run_shard_bench(
    names: Optional[List[str]] = None, smoke: bool = False
) -> Dict[str, object]:
    """Run the pinned suite (or a subset) and build the report payload."""
    selected = list(SHARD_BENCH_SCENARIOS) if not names else names
    unknown = [name for name in selected if name not in SHARD_BENCH_SCENARIOS]
    if unknown:
        raise KeyError(f"unknown shard bench scenario(s): {', '.join(unknown)}")
    entries = []
    for name in selected:
        scenario = SHARD_BENCH_SCENARIOS[name]
        if smoke:
            scenario = scenario.smoke()
        entries.append(run_shard_scenario(scenario))
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "smoke": smoke,
        "numpy": HAVE_NUMPY,
        "scenarios": entries,
    }


def validate_shard_report(payload: object) -> Dict[str, object]:
    """Schema gate for ``BENCH_shard.json``; raises ``ValueError`` on drift.

    Returns the payload on success so callers can chain.
    """

    def fail(message: str) -> None:
        raise ValueError(f"invalid shard bench report: {message}")

    if not isinstance(payload, dict):
        fail("top level must be an object")
    if payload.get("schema") != SCHEMA_NAME:
        fail(f"schema must be {SCHEMA_NAME!r}")
    if payload.get("version") != SCHEMA_VERSION:
        fail(f"version must be {SCHEMA_VERSION}")
    for flag in ("smoke", "numpy"):
        if not isinstance(payload.get(flag), bool):
            fail(f"{flag!r} must be a boolean")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail("'scenarios' must be a non-empty list")
    for entry in scenarios:
        if not isinstance(entry, dict):
            fail("each scenario must be an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            fail("scenario name must be a non-empty string")
        if not isinstance(entry.get("config"), dict):
            fail(f"{name}: 'config' must be an object")
        for key in ("rounds", "shards"):
            if not (isinstance(entry.get(key), int) and entry[key] > 0):
                fail(f"{name}: {key!r} must be a positive integer")
        for key in ("bootstrap_seconds", "wall_seconds", "seconds_per_round",
                    "first_round_seconds", "steady_seconds_per_round"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{name}: {key!r} must be a positive number")
        per_round = entry.get("round_seconds")
        if (
            not isinstance(per_round, list)
            or len(per_round) != entry["rounds"]
            or not all(isinstance(v, (int, float)) and v > 0 for v in per_round)
        ):
            fail(f"{name}: 'round_seconds' must list one positive number "
                 f"per round")
        ops = entry.get("ops_per_round")
        if not isinstance(ops, dict) or not all(
            isinstance(ops.get(k), (int, float)) for k in ("pushes", "requests")
        ):
            fail(f"{name}: 'ops_per_round' needs numeric pushes/requests")
        legacy = entry.get("legacy_seconds_per_round")
        if legacy is not None:
            if not isinstance(legacy, (int, float)) or legacy <= 0:
                fail(f"{name}: 'legacy_seconds_per_round' must be positive")
            speedup = entry.get("speedup_vs_legacy")
            if not isinstance(speedup, (int, float)) or speedup <= 0:
                fail(f"{name}: 'speedup_vs_legacy' must be a positive number")
    return payload  # type: ignore[return-value]


def render_shard_report(payload: Dict[str, object]) -> str:
    """Human-readable summary of a (validated) report payload."""
    lines = [
        f"shard bench report ({'smoke' if payload['smoke'] else 'full'} "
        f"scale, numpy={'yes' if payload['numpy'] else 'no'})",
    ]
    for entry in payload["scenarios"]:
        lines.append(
            f"  {entry['name']}: {entry['rounds']} rounds x "
            f"{entry['shards']} shards in {entry['wall_seconds']:.2f}s "
            f"({entry['seconds_per_round']:.3f}s/round mean; round 1 "
            f"{entry['first_round_seconds']:.3f}s, steady "
            f"{entry['steady_seconds_per_round']:.3f}s/round)"
        )
        legacy = entry.get("legacy_seconds_per_round")
        if legacy is not None:
            lines.append(
                f"    vs legacy engine at {legacy:.1f}s/round → "
                f"{entry['speedup_vs_legacy']:.1f}x"
            )
    return "\n".join(lines)
