"""Struct-of-arrays state for the sharded engine.

The legacy engine keeps one Python object per node; at N = 10,000 that is
10,000 heaps of views, samplers and counters exchanged message by message.
Here the *population* is the data structure:

* ``view`` — int64 matrix ``[N, l1]`` (rows padded with -1) + ``view_len``;
* ``samp_a``/``samp_b`` — per-(node, sampler) min-wise coefficients;
* ``samp_best`` — the retained (hash, id) of each sampler *packed* into one
  int64 as ``hash << 32 | id`` so a running minimum is a single integer
  ``min`` with the tie broken toward the smaller id (deterministic on both
  backends, no (hash, id) tuple compares on the hot path);
* ``alive`` — liveness flags (crash/restart faults toggle them);
* ``known`` — per-node observed-id sets.  The engine feeds samplers *only
  ids new to the node*: a min-wise sampler is duplicate-insensitive, so
  re-observing an id can never change its state, and skipping re-feeds is
  what collapses the Θ(rounds · β·l1² · l2) sampler cost to the novelty
  frontier (see ``repro/shard/engine.py``).

Node identity layout matches :class:`repro.experiments.scenarios.TopologySpec`:
ids ``[0, n_byzantine)`` are Byzantine, the next ``n_trusted`` are trusted
(RAPTEE), the rest honest.  Byzantine rows are unused (their behaviour is
the adversary model, not state).

Both backends — numpy matrices and plain Python lists — hold the *same
integers*; ``tests/test_shard_differential.py`` pins backend equality on
full runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crypto.minwise import MERSENNE_PRIME_31
from repro.perf.config import resolve_use_numpy
from repro.perf.kernels import HAVE_NUMPY
from repro.shard.rand import Purpose, key64, key_array

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

__all__ = ["ShardConfig", "ShardState", "EMPTY_SAMPLE", "build_state", "partition_bounds"]

_P = MERSENNE_PRIME_31
#: Packed sampler sentinel: strictly greater than any real ``hash << 32 | id``
#: (real hashes are < p and ids are < 2^32), so "empty" loses every min.
EMPTY_SAMPLE = _P << 32


@dataclass(frozen=True)
class ShardConfig:
    """Pure-data description of one sharded run (picklable for the pool).

    The supported feature set is the v1 batch-friendly subset of the
    scenario space: Brahms and RAPTEE topologies with loss, modeled
    encryption, eviction, the balanced adversary, loss-burst and
    crash/restart faults.  Churn, membership epochs, poisoned views,
    sketch unbiasing and the event engine stay on the legacy engines —
    :func:`repro.shard.compile.shard_config_from_spec` rejects them with
    explicit errors rather than silently approximating.
    """

    protocol: str  # "brahms" | "raptee"
    n_nodes: int
    seed: int
    n_byzantine: int = 0
    n_trusted: int = 0
    view_size: int = 20
    sample_size: int = 10
    alpha_count: int = 8
    beta_count: int = 8
    gamma_count: int = 4
    blocking_enabled: bool = True
    validation_period: int = 10
    push_limit: Optional[int] = None
    byz_push_multiplier: int = 3
    loss_rate: float = 0.0
    encrypt: bool = False
    eviction_kind: str = "none"  # "none" | "fixed" | "adaptive"
    eviction_params: Tuple[float, ...] = ()
    trusted_exchange: bool = True
    #: (first_round, last_round, extra_rate) inclusive loss-burst windows.
    loss_bursts: Tuple[Tuple[int, int, float], ...] = ()
    #: (node_id, at_round, down_rounds) crash/restart schedules.
    crashes: Tuple[Tuple[int, int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.protocol not in ("brahms", "raptee"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes")
        if self.n_byzantine + self.n_trusted > self.n_nodes:
            raise ValueError("byzantine + trusted exceed the population")
        if self.protocol == "brahms" and self.n_trusted:
            raise ValueError("trusted nodes are a RAPTEE concept")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.view_size <= 0 or self.sample_size <= 0:
            raise ValueError("view_size and sample_size must be positive")
        if min(self.alpha_count, self.beta_count) <= 0 or self.gamma_count < 0:
            raise ValueError("alpha/beta counts must be positive, gamma >= 0")
        if self.eviction_kind not in ("none", "fixed", "adaptive"):
            raise ValueError(f"unknown eviction kind {self.eviction_kind!r}")
        if self.eviction_kind == "fixed" and len(self.eviction_params) != 1:
            raise ValueError("fixed eviction takes exactly (rate,)")
        if self.eviction_kind == "adaptive" and len(self.eviction_params) != 4:
            raise ValueError(
                "adaptive eviction takes (low_share, high_share, low_rate, high_rate)"
            )

    @property
    def effective_push_limit(self) -> int:
        return self.push_limit if self.push_limit is not None else self.alpha_count

    @property
    def byz_push_limit(self) -> int:
        return self.effective_push_limit * self.byz_push_multiplier

    def kind_of(self, node_id: int) -> str:
        """Role name for a node id, from the one banded-layout definition
        both engines share (:meth:`repro.sim.node.NodeKind.for_banded_id`)."""
        from repro.sim.node import NodeKind

        return NodeKind.for_banded_id(
            node_id, self.n_byzantine, self.n_trusted
        ).value

    def is_byzantine(self, node_id: int) -> bool:
        return node_id < self.n_byzantine

    def is_trusted(self, node_id: int) -> bool:
        return self.n_byzantine <= node_id < self.n_byzantine + self.n_trusted

    def eviction_rate(self, trusted_share: float) -> float:
        """Mirror of :mod:`repro.core.eviction` as a pure function."""
        if self.eviction_kind == "fixed":
            return self.eviction_params[0]
        if self.eviction_kind == "adaptive":
            low_share, high_share, low_rate, high_rate = self.eviction_params
            if trusted_share <= low_share:
                return high_rate
            if trusted_share >= high_share:
                return low_rate
            slope = (low_rate - high_rate) / (high_share - low_share)
            return high_rate + slope * (trusted_share - low_share)
        return 0.0


@dataclass
class ShardState:
    """The whole population, struct-of-arrays (one backend or the other)."""

    use_numpy: bool
    round_number: int = 0
    # numpy backend: ndarray members; pure backend: nested lists / sets.
    view: object = None
    view_len: object = None
    samp_a: object = None
    samp_b: object = None
    samp_best: object = None
    alive: object = None
    known: object = None
    #: reduced[i] = scramble64(i) mod p, shared by every sampler hash.
    reduced: object = None
    sampler_resets: int = 0
    evicted_ids: int = 0
    trusted_exchanges: int = 0
    renewals: int = 0
    blocked_rounds: int = 0

    def view_row(self, node_id: int) -> List[int]:
        if self.use_numpy:
            length = int(self.view_len[node_id])
            return [int(v) for v in self.view[node_id, :length]]
        return list(self.view[node_id])

    def set_view_row(self, node_id: int, ids: List[int]) -> None:
        if self.use_numpy:
            length = len(ids)
            self.view[node_id, :length] = ids
            self.view[node_id, length:] = -1
            self.view_len[node_id] = length
        else:
            self.view[node_id] = list(ids)
            self.view_len[node_id] = len(ids)

    def sample_ids(self, node_id: int) -> List[int]:
        """Non-empty sampler ids of a node, in sampler order."""
        if self.use_numpy:
            packed = self.samp_best[node_id]
            return [int(p) & 0xFFFFFFFF for p in packed if int(p) != EMPTY_SAMPLE]
        return [p & 0xFFFFFFFF for p in self.samp_best[node_id] if p != EMPTY_SAMPLE]

    def is_alive(self, node_id: int) -> bool:
        return bool(self.alive[node_id])


def partition_bounds(n_nodes: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` id ranges, one per shard, sizes within one."""
    if shards <= 0:
        raise ValueError("shards must be positive")
    shards = min(shards, n_nodes)
    return [
        (n_nodes * index // shards, n_nodes * (index + 1) // shards)
        for index in range(shards)
    ]


def _scramble_mod_p(node_id: int) -> int:
    from repro.crypto.minwise import scramble64

    return scramble64(node_id) % _P


def _bootstrap_row(config: ShardConfig, node_id: int) -> List[int]:
    """l1 distinct peers, uniform over everyone else: the first l1 of the
    keyed order over the other ids (ties by id — both backends agree)."""
    n = config.n_nodes
    keyed = sorted(
        (other for other in range(n) if other != node_id),
        key=lambda other: (
            key64(config.seed, Purpose.BOOTSTRAP, 0, node_id, other),
            other,
        ),
    )
    return keyed[: config.view_size]


def _bootstrap_matrix_numpy(config: ShardConfig):
    """Vectorised bootstrap: per-node stable argsort over keyed ids.

    Chunked so the [chunk, N] key matrix stays small; stable sort breaks
    key ties by ascending id, matching the pure path's ``(key, id)`` sort.
    """
    n, l1 = config.n_nodes, config.view_size
    view = np.full((n, l1), -1, dtype=np.int64)
    ids = np.arange(n, dtype=np.uint64)
    chunk = max(1, min(n, (1 << 22) // max(n, 1) + 1))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        nodes = np.arange(lo, hi, dtype=np.uint64)[:, None]
        keys = key_array(config.seed, Purpose.BOOTSTRAP, 0, nodes, ids[None, :])
        # Self must never bootstrap into its own view: force its key last.
        rows = np.arange(hi - lo)
        keys[rows, lo + rows] = np.uint64(0xFFFFFFFFFFFFFFFF)
        order = np.argsort(keys, axis=1, kind="stable")
        view[lo:hi] = order[:, :l1]
    return view


def build_state(config: ShardConfig, use_numpy: Optional[bool] = None) -> ShardState:
    """Allocate and bootstrap the population state."""
    resolved = resolve_use_numpy(use_numpy, HAVE_NUMPY)
    n, l1, l2 = config.n_nodes, config.view_size, config.sample_size
    state = ShardState(use_numpy=resolved)
    if resolved:
        state.view = _bootstrap_matrix_numpy(config)
        state.view_len = np.full(n, l1, dtype=np.int64)
        nodes = np.arange(n, dtype=np.uint64)[:, None]
        slots = np.arange(l2, dtype=np.uint64)[None, :]
        a_keys = key_array(config.seed, Purpose.SAMPLER_A, 0, nodes, slots)
        b_keys = key_array(config.seed, Purpose.SAMPLER_B, 0, nodes, slots)
        state.samp_a = (a_keys % np.uint64(_P - 1)).astype(np.int64) + 1
        state.samp_b = (b_keys % np.uint64(_P)).astype(np.int64)
        state.samp_best = np.full((n, l2), EMPTY_SAMPLE, dtype=np.int64)
        state.alive = np.ones(n, dtype=bool)
        state.known = np.zeros((n, n), dtype=bool)
        from repro.perf.kernels import scramble64_array

        state.reduced = (
            scramble64_array(np.arange(n, dtype=np.uint64)) % np.uint64(_P)
        ).astype(np.int64)
    else:
        state.view = [_bootstrap_row(config, i) for i in range(n)]
        state.view_len = [l1] * n
        state.samp_a = [
            [1 + key64(config.seed, Purpose.SAMPLER_A, 0, i, j) % (_P - 1)
             for j in range(l2)]
            for i in range(n)
        ]
        state.samp_b = [
            [key64(config.seed, Purpose.SAMPLER_B, 0, i, j) % _P for j in range(l2)]
            for i in range(n)
        ]
        state.samp_best = [[EMPTY_SAMPLE] * l2 for _ in range(n)]
        state.alive = [True] * n
        state.known = [set() for _ in range(n)]
        state.reduced = [_scramble_mod_p(i) for i in range(n)]
    # Byzantine rows carry no protocol state; an empty view keeps any
    # accidental read loud (index errors) instead of plausible.
    for node_id in range(config.n_byzantine):
        state.set_view_row(node_id, [])
    return state
