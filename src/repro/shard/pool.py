"""Partition dispatch for the sharded engine.

Reuses the process-pool seam the experiment sweeps already own
(:func:`repro.experiments.runner.map_ordered`): partitions are the items,
:func:`~repro.shard.engine.plan_partition` /
:func:`~repro.shard.engine.apply_partition` the task.  ``workers <= 1``
runs partitions inline in partition order — zero pickling, the default and
the fast path for the numpy backend, whose per-partition work is already
vectorized.  Pool mode pays one state pickle per partition per phase, so
it earns its keep on the pure-Python backend (where per-node work is the
bottleneck) at small-to-medium populations; either way the barrier makes
the output byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.experiments.runner import map_ordered

__all__ = ["map_partitions"]


@dataclass(frozen=True)
class _Spread:
    """Picklable adapter: one task tuple → positional arguments."""

    fn: Callable

    def __call__(self, task: Tuple):
        return self.fn(*task)


def map_partitions(fn: Callable, tasks: Sequence[Tuple], workers: int) -> List:
    """Run ``fn(*task)`` per partition task, results in partition order.

    ``fn`` must be a module-level function (picklable) when ``workers > 1``;
    partition order in == partition order out, whatever the completion
    order — the engine's barrier depends on it.
    """
    return map_ordered(_Spread(fn), tasks, workers=workers if len(tasks) > 1 else 1)
