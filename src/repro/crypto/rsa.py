"""RSA, from scratch, for the attestation/provisioning substrate.

The paper's implementation uses RSA (via the Intel SGX OpenSSL port) for
asymmetric operations: signing enclave quotes and provisioning the trusted
group key to attested enclaves (§III-B, §V).  This module provides key
generation (Miller-Rabin), OAEP-style randomized encryption, and hash-based
signatures, all over plain Python integers.

Key sizes in the simulator default to 1024 bits, which is far faster in pure
Python than 2048+ and cryptographically irrelevant here (the adversary model
already grants that Byzantine nodes cannot break the primitives).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:
    import random  # annotation-only: callers inject the rng (usually Sha256Prng)

from repro.crypto.numbers import generate_prime, modular_inverse

__all__ = ["RsaPublicKey", "RsaPrivateKey", "RsaKeyPair", "generate_keypair", "RsaError"]

_PUBLIC_EXPONENT = 65537


class RsaError(Exception):
    """Raised on malformed ciphertexts, bad signatures, or oversized inputs."""


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encrypt(self, plaintext: bytes, rng: random.Random) -> bytes:
        """Encrypt with randomized padding (simplified OAEP).

        Layout before the modular exponentiation, for modulus of k bytes:
        ``0x00 || seed(16) || mask(message-with-length)`` where the mask is
        SHA-256-MGF1(seed).  This provides semantic security adequate for the
        simulation while staying self-contained.
        """
        k = self.byte_length
        max_message = k - 1 - 16 - 2  # prefix byte, seed, 2-byte length
        if len(plaintext) > max_message:
            raise RsaError(
                f"message of {len(plaintext)} bytes exceeds the {max_message}-byte "
                f"capacity of a {self.n.bit_length()}-bit key"
            )
        seed = rng.getrandbits(128).to_bytes(16, "big")
        body = len(plaintext).to_bytes(2, "big") + plaintext
        body = body.ljust(k - 1 - 16, b"\x00")
        masked = bytes(b ^ m for b, m in zip(body, _mgf1(seed, len(body))))
        padded = b"\x00" + seed + masked
        value = int.from_bytes(padded, "big")
        cipher_value = pow(value, self.e, self.n)
        return cipher_value.to_bytes(k, "big")

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a hash-and-exponentiate signature produced by ``sign``."""
        if len(signature) != self.byte_length:
            return False
        signature_value = int.from_bytes(signature, "big")
        if signature_value >= self.n:
            return False
        recovered = pow(signature_value, self.e, self.n)
        expected = int.from_bytes(_signature_digest(message, self.byte_length), "big")
        return recovered == expected


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key; retains p and q to allow CRT acceleration."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def _private_op(self, value: int) -> int:
        # CRT: roughly 3-4x faster than a single pow over n.
        d_p = self.d % (self.p - 1)
        d_q = self.d % (self.q - 1)
        q_inv = modular_inverse(self.q, self.p)
        m_p = pow(value % self.p, d_p, self.p)
        m_q = pow(value % self.q, d_q, self.q)
        h = (q_inv * (m_p - m_q)) % self.p
        return m_q + h * self.q

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`RsaPublicKey.encrypt`."""
        if len(ciphertext) != self.byte_length:
            raise RsaError("ciphertext length does not match the key modulus")
        cipher_value = int.from_bytes(ciphertext, "big")
        if cipher_value >= self.n:
            raise RsaError("ciphertext value out of range")
        padded = self._private_op(cipher_value).to_bytes(self.byte_length, "big")
        if padded[0] != 0:
            raise RsaError("malformed padding prefix")
        seed = padded[1:17]
        masked = padded[17:]
        body = bytes(b ^ m for b, m in zip(masked, _mgf1(seed, len(masked))))
        message_length = int.from_bytes(body[:2], "big")
        if message_length > len(body) - 2:
            raise RsaError("malformed length field")
        return body[2 : 2 + message_length]

    def sign(self, message: bytes) -> bytes:
        """Sign SHA-256(message) with full-domain-style padding."""
        digest = _signature_digest(message, self.byte_length)
        value = int.from_bytes(digest, "big")
        return self._private_op(value).to_bytes(self.byte_length, "big")


@dataclass(frozen=True)
class RsaKeyPair:
    public: RsaPublicKey
    private: RsaPrivateKey


def _mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation with SHA-256."""
    output = b""
    counter = 0
    while len(output) < length:
        output += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return output[:length]


def _signature_digest(message: bytes, key_bytes: int) -> bytes:
    """Expand SHA-256(message) to the key width with a zero top byte."""
    digest = hashlib.sha256(message).digest()
    expanded = _mgf1(b"sig" + digest, key_bytes - 1)
    return b"\x00" + expanded


def generate_keypair(bits: int, rng: random.Random) -> RsaKeyPair:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus."""
    if bits < 128:
        raise ValueError("modulus below 128 bits is not supported")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = modular_inverse(_PUBLIC_EXPONENT, phi)
        private = RsaPrivateKey(n=n, e=_PUBLIC_EXPONENT, d=d, p=p, q=q)
        return RsaKeyPair(public=private.public_key(), private=private)
