"""AES-128 block cipher, implemented from scratch.

RAPTEE's implementation uses Intel's OpenSSL SGX port with AES in CTR mode
for all symmetric encryption (paper §V).  This module provides the block
cipher; :mod:`repro.crypto.ctr` layers the CTR stream mode on top.

The S-box and its inverse are derived programmatically from the GF(2^8)
multiplicative inverse and the FIPS-197 affine transform rather than being
transcribed as literal tables, which makes the derivation itself testable.

Two encryption paths coexist:

* the *reference* path — per-operation SubBytes/ShiftRows/MixColumns over
  the flat byte state, a readable transliteration of FIPS-197;
* a *T-table* path — the classic software-AES optimisation that merges the
  three round operations into four 256-entry 32-bit word tables, derived
  here from the same S-box and GF tables rather than transcribed.

The T-table path (plus a key-schedule cache) is used when
:mod:`repro.perf` fast paths are enabled, which is the default; the
differential suite proves both paths byte-identical, and
``tests/test_crypto_aes.py`` pins the FIPS-197 vectors against each.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.perf.config import STATE as _PERF_STATE

__all__ = ["AES128", "BLOCK_SIZE"]

BLOCK_SIZE = 16

# The AES field: GF(2^8) with reduction polynomial x^8 + x^4 + x^3 + x + 1.
_REDUCTION_POLY = 0x11B


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= _REDUCTION_POLY
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); the inverse of 0 is defined as 0."""
    if a == 0:
        return 0
    # The multiplicative group has order 255, so a^254 = a^-1.
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _rotl8(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (8 - amount))) & 0xFF


def _build_sbox() -> List[int]:
    """Derive the AES S-box: inverse in GF(2^8) followed by the affine map."""
    sbox = []
    for value in range(256):
        inv = _gf_inverse(value)
        transformed = (
            inv
            ^ _rotl8(inv, 1)
            ^ _rotl8(inv, 2)
            ^ _rotl8(inv, 3)
            ^ _rotl8(inv, 4)
            ^ 0x63
        )
        sbox.append(transformed)
    return sbox


def _invert_sbox(sbox: Sequence[int]) -> List[int]:
    inverse = [0] * 256
    for index, value in enumerate(sbox):
        inverse[value] = index
    return inverse


SBOX: Sequence[int] = tuple(_build_sbox())
INV_SBOX: Sequence[int] = tuple(_invert_sbox(SBOX))

# Round constants for key expansion: rcon[i] = x^(i-1) in GF(2^8).
_RCON = [0x01]
for _ in range(9):
    _RCON.append(_gf_mul(_RCON[-1], 0x02))

# Precomputed xtime tables speed up MixColumns noticeably in pure Python.
_MUL2 = tuple(_gf_mul(x, 2) for x in range(256))
_MUL3 = tuple(_gf_mul(x, 3) for x in range(256))
_MUL9 = tuple(_gf_mul(x, 9) for x in range(256))
_MUL11 = tuple(_gf_mul(x, 11) for x in range(256))
_MUL13 = tuple(_gf_mul(x, 13) for x in range(256))
_MUL14 = tuple(_gf_mul(x, 14) for x in range(256))


def _build_t_tables() -> Tuple[Tuple[int, ...], ...]:
    """Encryption T-tables: SubBytes + ShiftRows + MixColumns fused.

    ``te_i[a]`` is the contribution of S-box output ``S(a)`` to output
    column word position ``i`` — four byte-rotations of the MixColumns
    column ``(2·S(a), S(a), S(a), 3·S(a))``.  One table lookup + XOR per
    input byte replaces three separate per-byte passes.
    """
    te0, te1, te2, te3 = [], [], [], []
    for value in range(256):
        s = SBOX[value]
        s2, s3 = _MUL2[s], _MUL3[s]
        te0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
        te1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
        te2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
        te3.append((s << 24) | (s << 16) | (s3 << 8) | s2)
    return tuple(te0), tuple(te1), tuple(te2), tuple(te3)


_TE0, _TE1, _TE2, _TE3 = _build_t_tables()

# Expanded-schedule cache: key expansion costs ~45 S-box/XOR word steps, and
# the transport layer builds ciphers for the same handful of pair keys over
# millions of messages.  Capped so adversarially many distinct keys cannot
# grow it without bound; only consulted when perf fast paths are enabled.
_SCHEDULE_CACHE: Dict[bytes, Tuple[List[List[int]], List[Tuple[int, int, int, int]]]] = {}
_SCHEDULE_CACHE_MAX = 4096


class AES128:
    """AES with a 128-bit key (10 rounds), FIPS-197 compliant.

    Instances are immutable after construction; the expanded key schedule is
    computed once.  Use :class:`repro.crypto.ctr.AesCtr` for stream
    encryption of arbitrary-length messages.
    """

    ROUNDS = 10

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError(f"AES-128 requires a 16-byte key, got {len(key)}")
        if _PERF_STATE.enabled:
            cached = _SCHEDULE_CACHE.get(key)
            if cached is None:
                cached = self._expand_schedules(key)
                if len(_SCHEDULE_CACHE) < _SCHEDULE_CACHE_MAX:
                    _SCHEDULE_CACHE[bytes(key)] = cached
            self._round_keys, self._round_words = cached
        else:
            self._round_keys, self._round_words = self._expand_schedules(key)

    @classmethod
    def _expand_schedules(
        cls, key: bytes
    ) -> Tuple[List[List[int]], List[Tuple[int, int, int, int]]]:
        """Both schedule forms: flat bytes (reference) and packed words
        (T-table path).  They are the same schedule, repacked."""
        round_keys = cls._expand_key(key)
        round_words = [
            tuple(
                int.from_bytes(bytes(rk[4 * j : 4 * j + 4]), "big") for j in range(4)
            )
            for rk in round_keys
        ]
        return round_keys, round_words

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion producing 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(11):
            rk = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- state helpers ----------------------------------------------------
    # The state is held column-major as a flat list of 16 ints, matching the
    # byte order of the input block (state[r + 4*c] = byte r of column c).

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # Row r (bytes r, r+4, r+8, r+12) rotates left by r.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[i + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[i + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[i + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[i + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[i + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[i + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    # -- public API --------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        if _PERF_STATE.enabled:
            return self._encrypt_block_ttable(block)
        return self._encrypt_block_reference(block)

    def _encrypt_block_reference(self, block: bytes) -> bytes:
        """The readable FIPS-197 path: one pass per round operation."""
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.ROUNDS):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)

    def _encrypt_block_ttable(self, block: bytes) -> bytes:
        """Fused-table path: 16 lookups + XORs per round on 32-bit words.

        State words are big-endian columns; each output word pulls the
        ShiftRows-selected byte from each input column, exactly as in the
        per-byte path (column c reads rows from columns c, c+1, c+2, c+3).
        """
        words = self._round_words
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        rk = words[0]
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        for rk in words[1 : self.ROUNDS]:
            t0 = (te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF]
                  ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[0])
            t1 = (te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF]
                  ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[1])
            t2 = (te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF]
                  ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[2])
            t3 = (te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF]
                  ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        sbox = SBOX
        rk = words[self.ROUNDS]
        t0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[0]
        t1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[1]
        t2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[2]
        t3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[3]
        return ((t0 << 96) | (t1 << 64) | (t2 << 32) | t3).to_bytes(16, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        for round_index in range(self.ROUNDS - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
