"""AES-CTR stream mode, as used by RAPTEE for symmetric encryption (§V).

CTR turns the AES block cipher into a stream cipher: the keystream is the
encryption of successive counter blocks (nonce || counter), XORed with the
message.  Encryption and decryption are the same operation.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.perf.config import STATE as _PERF_STATE

__all__ = ["AesCtr", "NONCE_SIZE"]

NONCE_SIZE = 8


class AesCtr:
    """AES-128 in counter mode with an 8-byte nonce and 8-byte block counter.

    A (key, nonce) pair must never be reused for two different messages; the
    caller (see :class:`repro.core.auth.MutualAuth` and
    :class:`repro.sim.network.Network`) derives a fresh nonce per message.
    """

    def __init__(self, key: bytes, nonce: bytes):
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
        self._cipher = AES128(key)
        self._nonce = nonce

    @classmethod
    def from_cipher(cls, cipher: AES128, nonce: bytes) -> "AesCtr":
        """Build a CTR stream over an existing block cipher.

        The transport layer keeps one :class:`AES128` per node pair and
        re-nonces it per message; this constructor skips the per-message
        key expansion that ``AesCtr(key, nonce)`` would repeat.
        """
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
        stream = object.__new__(cls)
        stream._cipher = cipher
        stream._nonce = nonce
        return stream

    def keystream(self, length: int, initial_counter: int = 0) -> bytes:
        """The raw keystream: AES(nonce || counter) for successive counters.

        Public because CTR's XOR symmetry lets a simulated wire apply one
        keystream for the encrypt *and* decrypt halves of a round trip.
        """
        blocks = []
        counter = initial_counter
        produced = 0
        encrypt_block = self._cipher.encrypt_block
        nonce = self._nonce
        while produced < length:
            counter_block = nonce + counter.to_bytes(8, "big")
            blocks.append(encrypt_block(counter_block))
            produced += BLOCK_SIZE
            counter += 1
        return b"".join(blocks)[:length]

    # Backwards-compatible private alias (pre-perf-layer name).
    _keystream = keystream

    def encrypt(self, plaintext: bytes, initial_counter: int = 0) -> bytes:
        """Encrypt (or decrypt) ``plaintext`` starting at ``initial_counter``."""
        keystream = self.keystream(len(plaintext), initial_counter)
        if _PERF_STATE.enabled:
            # One big-int XOR instead of a per-byte Python loop; equal by
            # definition of XOR on the big-endian integer encoding.
            return (
                int.from_bytes(plaintext, "big") ^ int.from_bytes(keystream, "big")
            ).to_bytes(len(plaintext), "big")
        return bytes(p ^ k for p, k in zip(plaintext, keystream))

    # CTR is an involution: decrypting is encrypting the ciphertext.
    decrypt = encrypt
