"""AES-CTR stream mode, as used by RAPTEE for symmetric encryption (§V).

CTR turns the AES block cipher into a stream cipher: the keystream is the
encryption of successive counter blocks (nonce || counter), XORed with the
message.  Encryption and decryption are the same operation.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE

__all__ = ["AesCtr", "NONCE_SIZE"]

NONCE_SIZE = 8


class AesCtr:
    """AES-128 in counter mode with an 8-byte nonce and 8-byte block counter.

    A (key, nonce) pair must never be reused for two different messages; the
    caller (see :class:`repro.core.auth.MutualAuth` and
    :class:`repro.sim.network.Network`) derives a fresh nonce per message.
    """

    def __init__(self, key: bytes, nonce: bytes):
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
        self._cipher = AES128(key)
        self._nonce = nonce

    def _keystream(self, length: int, initial_counter: int = 0) -> bytes:
        blocks = []
        counter = initial_counter
        produced = 0
        while produced < length:
            counter_block = self._nonce + counter.to_bytes(8, "big")
            blocks.append(self._cipher.encrypt_block(counter_block))
            produced += BLOCK_SIZE
            counter += 1
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes, initial_counter: int = 0) -> bytes:
        """Encrypt (or decrypt) ``plaintext`` starting at ``initial_counter``."""
        keystream = self._keystream(len(plaintext), initial_counter)
        return bytes(p ^ k for p, k in zip(plaintext, keystream))

    # CTR is an involution: decrypting is encrypting the ciphertext.
    decrypt = encrypt
