"""From-scratch cryptographic substrate for the RAPTEE reproduction.

Mirrors the paper's crypto stack (Intel SGX OpenSSL port): AES-128 in CTR
mode for symmetric encryption, RSA for asymmetric operations, SHA-256-based
hashing/HMAC/HKDF, plus the min-wise independent hash family used by Brahms
samplers and a deterministic PRNG for reproducible simulation.
"""

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.crypto.ctr import AesCtr, NONCE_SIZE
from repro.crypto.hashing import (
    concat_hash,
    constant_time_equal,
    hkdf,
    hmac_sha256,
    int_digest,
    sha256,
)
from repro.crypto.minwise import (
    CryptoMinWiseHash,
    MERSENNE_PRIME_31,
    MERSENNE_PRIME_61,
    MinWiseFamily,
    MinWiseHash,
)
from repro.crypto.numbers import generate_prime, is_probable_prime, modular_inverse
from repro.crypto.prng import Sha256Prng, derive_seed
from repro.crypto.rsa import (
    RsaError,
    RsaKeyPair,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)

__all__ = [
    "AES128",
    "BLOCK_SIZE",
    "AesCtr",
    "NONCE_SIZE",
    "concat_hash",
    "constant_time_equal",
    "hkdf",
    "hmac_sha256",
    "int_digest",
    "sha256",
    "CryptoMinWiseHash",
    "MERSENNE_PRIME_31",
    "MERSENNE_PRIME_61",
    "MinWiseFamily",
    "MinWiseHash",
    "generate_prime",
    "is_probable_prime",
    "modular_inverse",
    "Sha256Prng",
    "derive_seed",
    "RsaError",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
]
