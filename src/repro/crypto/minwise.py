"""Min-wise independent permutation family (Broder et al., 2000).

Brahms' sampling component achieves uniformity by equipping every sampler
with a hash function drawn at random from a min-wise independent family and
retaining the stream element with the minimal hash (§II, Fig. 2).  We provide
the standard approximately-min-wise construction ``h(x) = (a*x + b) mod p``
over a Mersenne prime field, which is the construction used in practice, plus
a slower cryptographic variant for adversarial settings.

The default field is p = 2^31 − 1: coefficients and reduced inputs fit in
31 bits, so products stay below 2^62 and the whole family evaluates safely
in int64 — which is what lets :class:`repro.brahms.sampler.SamplerGroup`
batch-evaluate it with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.crypto.hashing import int_digest

if TYPE_CHECKING:
    import random  # annotation-only: the family draw rng is always injected

__all__ = [
    "MinWiseHash",
    "CryptoMinWiseHash",
    "MinWiseFamily",
    "MERSENNE_PRIME_31",
    "MERSENNE_PRIME_61",
]

MERSENNE_PRIME_31 = (1 << 31) - 1
MERSENNE_PRIME_61 = (1 << 61) - 1

# 2-universal linear hashing is only *approximately* min-wise, and its bias
# is worst on structured inputs — arithmetic progressions like the simulator's
# consecutive node IDs.  A fixed 64-bit multiplicative scramble (splitmix64
# constants) decorrelates the input before the linear map; it is a bijection
# on 64-bit words, so distinctness is preserved.
_SCRAMBLE_MULTIPLIER = 0x9E3779B97F4A7C15
_SCRAMBLE_OFFSET = 0xD1B54A32D192ED03
_WORD_MASK = (1 << 64) - 1


def scramble64(value: int) -> int:
    """Fixed bijective 64-bit input scramble applied before linear hashing."""
    return (value * _SCRAMBLE_MULTIPLIER + _SCRAMBLE_OFFSET) & _WORD_MASK


@dataclass(frozen=True)
class MinWiseHash:
    """One function ``h(x) = (a*(scramble64(x) mod p) + b) mod p`` from the
    2-universal family.  2-universal linear hashing is approximately
    min-wise independent: drawing (a, b) uniformly makes every stream
    element (nearly) equally likely to be the minimum."""

    a: int
    b: int
    p: int = MERSENNE_PRIME_31

    def __post_init__(self) -> None:
        if not 0 < self.a < self.p:
            raise ValueError("coefficient a must be in (0, p)")
        if not 0 <= self.b < self.p:
            raise ValueError("coefficient b must be in [0, p)")

    def __call__(self, value: int) -> int:
        return (self.a * (scramble64(value) % self.p) + self.b) % self.p

    def batch(self, values: Sequence[int], use_numpy: Optional[bool] = None):
        """Evaluate the hash over a batch, in input order.

        With numpy available, fast paths on and the default 31-bit field,
        this dispatches to the exact int64 kernel
        (:func:`repro.perf.kernels.minwise_batch`); any other modulus (the
        61-bit field would overflow int64 products) or a numpy-less install
        falls back to the scalar loop.  Both return the same integers.
        """
        # Imported lazily: repro.perf.kernels imports this module's scramble
        # constants, so a top-level import would be circular.
        from repro.perf.config import resolve_use_numpy
        from repro.perf.kernels import HAVE_NUMPY, minwise_batch

        if self.p == MERSENNE_PRIME_31 and resolve_use_numpy(use_numpy, HAVE_NUMPY):
            return minwise_batch(self.a, self.b, self.p, values)
        return [self(value) for value in values]


@dataclass(frozen=True)
class CryptoMinWiseHash:
    """Keyed SHA-256 hash; slower, but unpredictable to an adversary.

    A Byzantine node that could predict a sampler's hash function could
    craft an ID winning the min-competition in every sampler.  The linear
    family is fine inside the simulator (hash coefficients are node-private
    state); this variant documents and tests the hardened option.
    """

    key: bytes

    def __call__(self, value: int) -> int:
        return int_digest(self.key + value.to_bytes(16, "big", signed=False), bits=61)


class MinWiseFamily:
    """Factory drawing independent hash functions from a seeded RNG."""

    def __init__(self, rng: random.Random, cryptographic: bool = False):
        self._rng = rng
        self.cryptographic = cryptographic

    def draw(self):
        """Draw one fresh, independent hash function."""
        if self.cryptographic:
            return CryptoMinWiseHash(key=self._rng.getrandbits(128).to_bytes(16, "big"))
        a = self._rng.randrange(1, MERSENNE_PRIME_31)
        b = self._rng.randrange(0, MERSENNE_PRIME_31)
        return MinWiseHash(a=a, b=b)
