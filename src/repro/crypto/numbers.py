"""Number-theoretic primitives backing the RSA implementation.

Everything here is deterministic given the supplied random source, which
keeps key generation reproducible inside the simulator.
"""

from __future__ import annotations

import random  # lint: disable=crypto-stdlib-random -- Miller-Rabin witness fallback is seeded from n, never from global state
from typing import Optional

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "modular_inverse",
    "MILLER_RABIN_ROUNDS",
]

MILLER_RABIN_ROUNDS = 40

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97]


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rng: Optional[random.Random] = None, rounds: int = MILLER_RABIN_ROUNDS) -> bool:
    """Miller-Rabin primality test.

    For n < 3,317,044,064,679,887,385,961,981 the fixed witness set below is
    deterministic and exact; for larger n we add ``rounds`` random witnesses,
    giving an error probability below 4^-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    # Deterministic witnesses (Sorenson & Webster) cover n < 3.317e24.
    deterministic_witnesses = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
    for a in deterministic_witnesses:
        if a >= n:
            continue
        if _miller_rabin_witness(n, a, d, r):
            return False
    if n < 3_317_044_064_679_887_385_961_981:
        return True

    rng = rng or random.Random(n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng):
            return candidate


def modular_inverse(a: int, m: int) -> int:
    """Return x with (a * x) % m == 1, raising ValueError if none exists."""
    # Extended Euclid.
    old_r, r = a % m, m
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return old_s % m
