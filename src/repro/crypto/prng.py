"""Deterministic cryptographically-styled PRNG.

The simulator must be bit-for-bit reproducible under a seed, including every
"random" nonce the auth protocol generates, so nodes draw randomness from a
deterministic SHA-256 counter-mode generator rather than from the OS.

``Sha256Prng`` also subclasses :class:`random.Random`, so it can be passed
anywhere a standard library ``Random`` is expected (e.g. RSA key generation).
"""

from __future__ import annotations

import hashlib
import random  # lint: disable=crypto-stdlib-random -- Sha256Prng IS the sanctioned random.Random subclass
from typing import Optional

__all__ = ["Sha256Prng", "derive_seed"]


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive an independent 128-bit child seed from a root seed and labels.

    Every node, component and repetition in the simulator derives its own
    stream this way, so that e.g. adding a node never perturbs the randomness
    of existing nodes (a common source of irreproducible simulations).
    """
    hasher = hashlib.sha256()
    hasher.update(root_seed.to_bytes(32, "big", signed=False))
    for label in labels:
        encoded = repr(label).encode()
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return int.from_bytes(hasher.digest()[:16], "big")


class Sha256Prng(random.Random):
    """SHA-256 counter-mode deterministic random generator.

    The output stream is SHA-256(seed || counter) for counter = 0, 1, ...
    Buffered so sequential small requests cost one hash per 32 bytes.
    """

    def __init__(self, seed: int = 0):
        self._seed_bytes = b""
        self._counter = 0
        self._buffer = b""
        super().__init__(seed)

    # -- random.Random overrides ------------------------------------------

    def seed(self, a=0, version=2) -> None:  # noqa: D102 - inherited contract
        if isinstance(a, bytes):
            seed_bytes = a
        elif isinstance(a, int):
            seed_bytes = a.to_bytes(32, "big", signed=False)
        elif a is None:
            seed_bytes = b"\x00" * 32
        else:
            seed_bytes = hashlib.sha256(repr(a).encode()).digest()
        self._seed_bytes = hashlib.sha256(b"sha256prng" + seed_bytes).digest()
        self._counter = 0
        self._buffer = b""

    def getstate(self):
        return (self._seed_bytes, self._counter, self._buffer)

    def setstate(self, state) -> None:
        self._seed_bytes, self._counter, self._buffer = state

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return self.getrandbits(53) / (1 << 53)

    def getrandbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        data = self.bytes((k + 7) // 8)
        return int.from_bytes(data, "big") >> ((len(data) * 8) - k)

    # -- extra API ----------------------------------------------------------

    def bytes(self, n: int) -> bytes:
        """Return ``n`` deterministic pseudo-random bytes."""
        while len(self._buffer) < n:
            block = hashlib.sha256(
                self._seed_bytes + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def nonce(self, size: int = 16) -> bytes:
        """Fresh nonce for the auth handshake (deterministic under the seed)."""
        return self.bytes(size)

    def spawn(self, *labels: object) -> "Sha256Prng":
        """Create an independent child generator keyed by ``labels``."""
        child_seed = derive_seed(
            int.from_bytes(self._seed_bytes[:16], "big"), *labels
        )
        return Sha256Prng(child_seed)
