"""Hash utilities shared by the auth protocol and the samplers.

The mutual-authentication handshake of §IV-A computes ``H(r_A . r_B)`` — the
hash of the concatenation of two nonces.  We use SHA-256 and make the
concatenation unambiguous with explicit length framing.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Iterable

__all__ = [
    "sha256",
    "concat_hash",
    "hmac_sha256",
    "hkdf",
    "constant_time_equal",
    "int_digest",
]


def sha256(data: bytes) -> bytes:
    """SHA-256 of ``data``."""
    return hashlib.sha256(data).digest()


def concat_hash(*parts: bytes) -> bytes:
    """Hash a concatenation of byte strings with length framing.

    Framing (4-byte big-endian length before each part) prevents the classic
    ambiguity where ``H(a || b) == H(a' || b')`` for different splits.

    One join + one C-level update hashes the identical byte stream that
    per-part updates would, at a fraction of the call overhead — this sits
    on the auth hot path (every proof hashes framed nonces).
    """
    return hashlib.sha256(
        b"".join(len(part).to_bytes(4, "big") + part for part in parts)
    ).digest()


# HMAC pads and hashes the key on every call; the simulator computes
# millions of proofs under a handful of long-lived keys, so keyed
# prototypes are cached and copied (hmac.HMAC.copy is cheap).
_HMAC_PROTOTYPES: dict = {}


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 (with per-key prototype caching)."""
    prototype = _HMAC_PROTOTYPES.get(key)
    if prototype is None:
        prototype = _hmac.new(key, None, hashlib.sha256)
        if len(_HMAC_PROTOTYPES) < 4096:
            _HMAC_PROTOTYPES[key] = prototype
    mac = prototype.copy()
    mac.update(message)
    return mac.digest()


def hkdf(key_material: bytes, info: bytes, length: int = 16, salt: bytes = b"") -> bytes:
    """HKDF (RFC 5869) extract-and-expand with SHA-256.

    Used to derive per-purpose subkeys (auth, transport) from a node's root
    secret so that key reuse across contexts is impossible.
    """
    if length > 255 * 32:
        raise ValueError("HKDF output too long")
    pseudo_random_key = hmac_sha256(salt or b"\x00" * 32, key_material)
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac_sha256(pseudo_random_key, block + info + bytes([counter]))
        output += block
        counter += 1
    return output[:length]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe byte-string comparison."""
    return _hmac.compare_digest(a, b)


def int_digest(data: bytes, bits: int = 64) -> int:
    """SHA-256 of ``data`` truncated to an integer of ``bits`` bits."""
    if not 0 < bits <= 256:
        raise ValueError("bits must be in (0, 256]")
    return int.from_bytes(hashlib.sha256(data).digest(), "big") >> (256 - bits)


def iter_hash_chain(seed: bytes, count: int) -> Iterable[bytes]:
    """Yield ``count`` successive SHA-256 chain values starting from ``seed``."""
    value = seed
    for _ in range(count):
        value = hashlib.sha256(value).digest()
        yield value
