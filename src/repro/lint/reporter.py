"""Finding reporters (text / JSON) and the baseline mechanism.

A *baseline* freezes the currently-known findings so a newly introduced rule
can land without blocking CI on legacy violations: ``--write-baseline``
records every current finding's fingerprint, and later runs with
``--baseline`` drop findings whose fingerprint is already recorded.  New
violations — anything not in the baseline — still fail the run.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.lint.core import Finding, Severity

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
]


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    if not findings:
        return "repro.lint: no findings"
    lines = [finding.format_text() for finding in findings]
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.severity.name.lower()] = counts.get(finding.severity.name.lower(), 0) + 1
    summary = ", ".join(f"{count} {name}" for name, count in sorted(counts.items()))
    lines.append(f"repro.lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: ``{"findings": [...], "count": N}``."""
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def render_sarif(findings: Sequence[Finding], rules: Sequence = ()) -> str:
    """SARIF 2.1.0 report (one run), for code-scanning upload in CI.

    ``rules`` is the battery the run used; its metadata populates the tool
    driver so viewers can show descriptions next to results.
    """
    rule_meta = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "fullDescription": {"text": rule.rationale or rule.description},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        for rule in sorted(rules, key=lambda r: r.rule_id)
    ]
    rule_index = {meta["id"]: index for index, meta in enumerate(rule_meta)}
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "reproLint/v1": "/".join(finding.fingerprint()),
            },
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rule_meta,
                    }
                },
                "results": results,
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def write_baseline(findings: Iterable[Finding], path: str) -> None:
    """Record finding fingerprints so later runs can ignore them."""
    fingerprints = sorted({finding.fingerprint() for finding in findings})
    payload = {
        "baseline": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in fingerprints
        ]
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    fingerprints: Set[Tuple[str, str, str]] = set()
    for entry in payload.get("baseline", []):
        fingerprints.add((entry["rule"], entry["path"], entry["message"]))
    return fingerprints


def apply_baseline(findings: Sequence[Finding], baseline: Set[Tuple[str, str, str]]) -> List[Finding]:
    """Drop findings whose fingerprint is recorded in the baseline."""
    return [finding for finding in findings if finding.fingerprint() not in baseline]
