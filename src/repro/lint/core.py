"""AST-based static-analysis framework for the RAPTEE reproduction.

The simulator's correctness claims rest on invariants that ordinary tests
cannot enforce — bit-for-bit determinism under a seed, a hard trusted /
untrusted boundary around :class:`~repro.sgx.enclave.Enclave` code, and
crypto hygiene (constant-time comparisons, no OS entropy).  This module
provides the machinery that project-specific rules plug into:

* :class:`Rule` — one named check with a severity and a path scope;
* :class:`Finding` — one violation, pointing at a file/line/column;
* :class:`ModuleInfo` — a parsed source file handed to every rule;
* :class:`LintRunner` — walks paths, applies rules, honours suppressions.

Suppressions are inline comments::

    bad_call()          # lint: disable=rule-id[,other-rule] -- justification
    # lint: disable-next=rule-id -- justification (suppresses the next line)
    # lint: disable-file=rule-id -- justification (whole file)

``disable=all`` silences every rule for that line.  The ``--`` justification
is optional but strongly encouraged: a suppression without a reason is a
review smell.
"""

from __future__ import annotations

import ast
import enum
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Severity",
    "Finding",
    "ModuleInfo",
    "Rule",
    "LintRunner",
    "register_rule",
    "registered_rules",
    "lint_source",
    "scope_path_for",
    "type_checking_lines",
    "module_import_aliases",
    "PARSE_ERROR_RULE_ID",
]

PARSE_ERROR_RULE_ID = "parse-error"

_SUPPRESSION_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable(?:-next|-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_\-,\s]+)"
)


class Severity(enum.IntEnum):
    """Finding severity; the CLI exit code only considers WARNING and above."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[member.name.lower() for member in cls]}"
            ) from None


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.name.lower(),
            "message": self.message,
        }

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.name.lower()}: [{self.rule_id}] {self.message}"
        )

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-independent identity used by the baseline mechanism."""
        return (self.rule_id, self.path, self.message)


@dataclass
class _Suppressions:
    """Per-file suppression state parsed from comments."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    whole_file: Set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.whole_file or "all" in self.whole_file:
            return True
        rules = self.by_line.get(finding.line, ())
        return finding.rule_id in rules or "all" in rules


def _parse_suppressions(source: str) -> _Suppressions:
    suppressions = _Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (number, line)
            for number, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for line_number, text in comments:
        match = _SUPPRESSION_RE.search(text)
        if not match:
            continue
        # Everything after a ``--`` is a human justification, not a rule id.
        raw_rules = match.group("rules").split("--")[0]
        rule_ids = {rule.strip() for rule in raw_rules.split(",") if rule.strip()}
        if not rule_ids:
            continue
        kind = match.group("kind")
        if kind == "disable-file":
            suppressions.whole_file |= rule_ids
        elif kind == "disable-next":
            suppressions.by_line.setdefault(line_number + 1, set()).update(rule_ids)
        else:
            suppressions.by_line.setdefault(line_number, set()).update(rule_ids)
    return suppressions


def scope_path_for(path: str) -> str:
    """Map a filesystem path to the scope path rules match against.

    The portion after the last ``src/`` segment is used when present, so
    ``src/repro/sim/engine.py`` scopes as ``repro/sim/engine.py``.  For
    paths under a ``tests``/``benchmarks``/``examples`` root (relative or
    absolute) the scope starts at that root, e.g. ``tests/test_x.py``.
    """
    normalized = path.replace(os.sep, "/")
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if "src" in parts:
        index = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[index + 1 :]
        if tail:
            return "/".join(tail)
    for marker in ("tests", "benchmarks", "examples"):
        if marker in parts:
            index = len(parts) - 1 - parts[::-1].index(marker)
            return "/".join(parts[index:])
    return "/".join(parts)


def type_checking_lines(tree: ast.AST) -> Set[int]:
    """Line numbers covered by ``if TYPE_CHECKING:`` blocks.

    Imports inside these blocks never execute at runtime, so rules about
    runtime behaviour (e.g. stdlib ``random`` reaching crypto code) skip
    them.
    """
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_type_checking = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or (isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")
        if not is_type_checking:
            continue
        for child in node.body:
            end = getattr(child, "end_lineno", child.lineno)
            lines.update(range(child.lineno, end + 1))
    return lines


def module_import_aliases(tree: ast.AST, module_name: str) -> Set[str]:
    """Names the given top-level module is bound to (``import x as y``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == module_name:
                    aliases.add(alias.asname or root)
    return aliases


@dataclass
class ModuleInfo:
    """A parsed source file, as handed to every rule."""

    path: str
    scope_path: str
    source: str
    tree: ast.Module
    type_checking: Set[int] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str, path: str, scope_path: Optional[str] = None) -> "ModuleInfo":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            scope_path=scope_path if scope_path is not None else scope_path_for(path),
            source=source,
            tree=tree,
            type_checking=type_checking_lines(tree),
        )

    def import_aliases(self, module_name: str) -> Set[str]:
        return module_import_aliases(self.tree, module_name)


def _matches_prefix(scope_path: str, prefix: str) -> bool:
    return scope_path == prefix or scope_path.startswith(prefix.rstrip("/") + "/")


class Rule:
    """Base class for one lint check.

    Subclasses set ``rule_id``, ``description``, ``severity``, a path
    ``scope`` (prefixes relative to ``src/``; empty means *everywhere*) and
    optional ``exempt`` prefixes carved out of the scope, then implement
    :meth:`check` as a generator of findings.
    """

    rule_id: str = ""
    description: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        scope = self.scope
        exempt = self.exempt
        if exempt and any(_matches_prefix(module.scope_path, prefix) for prefix in exempt):
            return False
        if not scope:
            return True
        return any(_matches_prefix(module.scope_path, prefix) for prefix in scope)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=severity if severity is not None else self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> List[Rule]:
    """Fresh instances of every registered rule, importing the battery."""
    # Import for the side effect of registration; cheap and idempotent.
    from repro.lint import rules as _rules  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


class LintRunner:
    """Applies a rule battery over files and directories."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None, config=None):
        from repro.lint.config import LintConfig  # local import to avoid cycle

        self.config = config if config is not None else LintConfig()
        all_rules = list(rules) if rules is not None else registered_rules()
        self.rules = [rule for rule in all_rules if self.config.rule_enabled(rule.rule_id)]
        for rule in self.rules:
            override = self.config.scope_override(rule.rule_id)
            if override is not None:
                rule.scope = tuple(override)

    # -- file collection ----------------------------------------------------

    def collect_files(self, paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()  # deterministic traversal
                    dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                    for name in sorted(filenames):
                        if name.endswith(".py"):
                            files.append(os.path.join(dirpath, name))
            elif path.endswith(".py"):
                files.append(path)
        return [f for f in files if not self.config.excluded(scope_path_for(f))]

    # -- linting ------------------------------------------------------------

    def lint_source(self, source: str, path: str, scope_path: Optional[str] = None) -> List[Finding]:
        try:
            module = ModuleInfo.from_source(source, path, scope_path)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    rule_id=PARSE_ERROR_RULE_ID,
                    severity=Severity.ERROR,
                    message=f"could not parse file: {error.msg}",
                )
            ]
        suppressions = _parse_suppressions(source)
        findings = [
            finding
            for rule in self.rules
            if rule.applies_to(module)
            for finding in rule.check(module)
            if not suppressions.is_suppressed(finding)
        ]
        return sorted(findings)

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.lint_source(source, path)

    def lint_paths(self, paths: Iterable[str]) -> List[Finding]:
        findings: List[Finding] = []
        for path in self.collect_files(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings)


def lint_source(
    source: str,
    scope_path: str = "repro/sim/fixture.py",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string as if it lived at ``scope_path`` (test helper)."""
    runner = LintRunner(rules=rules)
    return runner.lint_source(source, path=scope_path, scope_path=scope_path)
