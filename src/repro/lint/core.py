"""AST-based static-analysis framework for the RAPTEE reproduction.

The simulator's correctness claims rest on invariants that ordinary tests
cannot enforce — bit-for-bit determinism under a seed, a hard trusted /
untrusted boundary around :class:`~repro.sgx.enclave.Enclave` code, and
crypto hygiene (constant-time comparisons, no OS entropy).  This module
provides the machinery that project-specific rules plug into:

* :class:`Rule` — one named per-file check with a severity and a path scope;
* :class:`ProjectRule` — a whole-program check over the
  :class:`~repro.lint.analysis.model.ProjectModel` (symbol table, import
  graph, call graph, taint engine — see :mod:`repro.lint.analysis`);
* :class:`Finding` — one violation, pointing at a file/line/column;
* :class:`ModuleInfo` — a parsed source file handed to every per-file rule;
* :class:`LintRunner` — walks paths, applies rules, honours suppressions,
  caches per-file results by content hash and parses in parallel with
  ``jobs > 1``.

Suppressions are inline comments::

    bad_call()          # lint: disable=rule-id[,other-rule] -- justification
    # lint: disable-next=rule-id -- justification (suppresses the next line)
    # lint: disable-file=rule-id -- justification (whole file)

``disable=all`` silences every rule for that line.  Suppressing an
ERROR-severity rule **requires** the ``-- justification`` clause; a bare
suppression of an error rule earns a ``lint-unjustified-suppression`` NOTE.
"""

from __future__ import annotations

import ast
import enum
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Severity",
    "Finding",
    "ModuleInfo",
    "Rule",
    "ProjectRule",
    "LintRunner",
    "register_rule",
    "registered_rules",
    "lint_source",
    "lint_project",
    "scope_path_for",
    "type_checking_lines",
    "module_import_aliases",
    "PARSE_ERROR_RULE_ID",
    "UNJUSTIFIED_SUPPRESSION_RULE_ID",
]

PARSE_ERROR_RULE_ID = "parse-error"
UNJUSTIFIED_SUPPRESSION_RULE_ID = "lint-unjustified-suppression"

#: Bump when rule logic changes in a way cached per-file findings must see.
ENGINE_VERSION = 2

_SUPPRESSION_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable(?:-next|-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_\-,\s]+)"
)


class Severity(enum.IntEnum):
    """Finding severity; the CLI exit code only considers WARNING and above."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[member.name.lower() for member in cls]}"
            ) from None


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.name.lower(),
            "message": self.message,
        }

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.name.lower()}: [{self.rule_id}] {self.message}"
        )

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-independent identity used by the baseline mechanism."""
        return (self.rule_id, self.path, self.message)


@dataclass(frozen=True)
class SuppressionRecord:
    """One ``# lint: disable...`` comment, as written."""

    kind: str                 # disable | disable-next | disable-file
    line: int
    rule_ids: Tuple[str, ...]
    has_justification: bool


@dataclass
class _Suppressions:
    """Per-file suppression state parsed from comments."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    whole_file: Set[str] = field(default_factory=set)
    records: List[SuppressionRecord] = field(default_factory=list)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.whole_file or "all" in self.whole_file:
            return True
        rules = self.by_line.get(finding.line, ())
        return finding.rule_id in rules or "all" in rules


def _parse_suppressions(source: str) -> _Suppressions:
    suppressions = _Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (number, line)
            for number, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for line_number, text in comments:
        match = _SUPPRESSION_RE.search(text)
        if not match:
            continue
        # Everything after a ``--`` is a human justification, not a rule id.
        raw_rules = match.group("rules").split("--")[0]
        rule_ids = tuple(
            dict.fromkeys(r.strip() for r in raw_rules.split(",") if r.strip())
        )
        if not rule_ids:
            continue
        remainder = text[match.start("rules"):]
        separator = remainder.find("--")
        justification = remainder[separator + 2:].strip() if separator >= 0 else ""
        kind = match.group("kind")
        suppressions.records.append(
            SuppressionRecord(
                kind=kind,
                line=line_number,
                rule_ids=rule_ids,
                has_justification=bool(justification),
            )
        )
        ids = set(rule_ids)
        if kind == "disable-file":
            suppressions.whole_file |= ids
        elif kind == "disable-next":
            suppressions.by_line.setdefault(line_number + 1, set()).update(ids)
        else:
            suppressions.by_line.setdefault(line_number, set()).update(ids)
    return suppressions


def scope_path_for(path: str) -> str:
    """Map a filesystem path to the scope path rules match against.

    The portion after the last ``src/`` segment is used when present, so
    ``src/repro/sim/engine.py`` scopes as ``repro/sim/engine.py``.  For
    paths under a ``tests``/``benchmarks``/``examples`` root (relative or
    absolute) the scope starts at that root, e.g. ``tests/test_x.py``.
    """
    normalized = path.replace(os.sep, "/")
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if "src" in parts:
        index = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[index + 1 :]
        if tail:
            return "/".join(tail)
    for marker in ("tests", "benchmarks", "examples"):
        if marker in parts:
            index = len(parts) - 1 - parts[::-1].index(marker)
            return "/".join(parts[index:])
    return "/".join(parts)


def type_checking_lines(tree: ast.AST) -> Set[int]:
    """Line numbers covered by ``if TYPE_CHECKING:`` blocks.

    Imports inside these blocks never execute at runtime, so rules about
    runtime behaviour (e.g. stdlib ``random`` reaching crypto code) skip
    them.
    """
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_type_checking = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or (isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")
        if not is_type_checking:
            continue
        for child in node.body:
            end = getattr(child, "end_lineno", child.lineno)
            lines.update(range(child.lineno, end + 1))
    return lines


def module_import_aliases(tree: ast.AST, module_name: str) -> Set[str]:
    """Names the given top-level module is bound to (``import x as y``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == module_name:
                    aliases.add(alias.asname or root)
    return aliases


@dataclass
class ModuleInfo:
    """A parsed source file, as handed to every per-file rule."""

    path: str
    scope_path: str
    source: str
    tree: ast.Module
    type_checking: Set[int] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str, path: str, scope_path: Optional[str] = None) -> "ModuleInfo":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            scope_path=scope_path if scope_path is not None else scope_path_for(path),
            source=source,
            tree=tree,
            type_checking=type_checking_lines(tree),
        )

    def import_aliases(self, module_name: str) -> Set[str]:
        return module_import_aliases(self.tree, module_name)


def _matches_prefix(scope_path: str, prefix: str) -> bool:
    return scope_path == prefix or scope_path.startswith(prefix.rstrip("/") + "/")


class Rule:
    """Base class for one lint check.

    Subclasses set ``rule_id``, ``description``, ``severity``, a path
    ``scope`` (prefixes relative to ``src/``; empty means *everywhere*) and
    optional ``exempt`` prefixes carved out of the scope, then implement
    :meth:`check` as a generator of findings.
    """

    rule_id: str = ""
    description: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()
    #: True for :class:`ProjectRule` subclasses, which run once per project.
    whole_program: bool = False

    def scope_allows(self, scope_path: str) -> bool:
        if self.exempt and any(
            _matches_prefix(scope_path, prefix) for prefix in self.exempt
        ):
            return False
        if not self.scope:
            return True
        return any(_matches_prefix(scope_path, prefix) for prefix in self.scope)

    def applies_to(self, module: ModuleInfo) -> bool:
        return self.scope_allows(module.scope_path)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=severity if severity is not None else self.severity,
            message=message,
        )

    def finding_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Location-addressed finding (whole-program rules have no node)."""
        return Finding(
            path=path,
            line=line,
            col=col + 1,
            rule_id=self.rule_id,
            severity=severity if severity is not None else self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that sees the whole project model instead of one file.

    Implement :meth:`check_project`; use :meth:`scope_allows` against each
    module's ``scope_path`` to honour ``scope``/``exempt``, and
    :meth:`finding_at` to point at concrete locations.
    """

    whole_program = True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> List[Rule]:
    """Fresh instances of every registered rule, importing the battery."""
    # Import for the side effect of registration; cheap and idempotent.
    from repro.lint import rules as _rules  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def _registered_severity(rule_id: str) -> Optional[Severity]:
    cls = _REGISTRY.get(rule_id)
    return cls.severity if cls is not None else None


@register_rule
class UnjustifiedSuppressionRule(Rule):
    """Suppressing an ERROR rule without saying why.

    The check itself runs inside :meth:`LintRunner.lint_source` (it needs
    the parsed suppression table, which per-file rules never see); this
    class exists so the rule is listed, configurable and disableable like
    any other.
    """

    rule_id = UNJUSTIFIED_SUPPRESSION_RULE_ID
    description = "ERROR-severity rule suppressed without a -- justification"
    rationale = (
        "A suppression is a claim that the checker is wrong here; for "
        "error-severity invariants that claim must be reviewable, which "
        "means written down next to the suppression itself."
    )
    severity = Severity.NOTE
    scope = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())


def _unjustified_suppression_findings(
    path: str, suppressions: _Suppressions
) -> List[Finding]:
    findings = []
    for record in suppressions.records:
        if record.has_justification:
            continue
        demanding = [
            rule_id
            for rule_id in record.rule_ids
            if rule_id == "all"
            or _registered_severity(rule_id) in (None, Severity.ERROR)
        ]
        if not demanding:
            continue
        findings.append(
            Finding(
                path=path,
                line=record.line,
                col=1,
                rule_id=UNJUSTIFIED_SUPPRESSION_RULE_ID,
                severity=Severity.NOTE,
                message=(
                    f"{record.kind}={','.join(demanding)} suppresses an "
                    f"error-severity rule without a '-- justification' clause"
                ),
            )
        )
    return findings


@dataclass
class _FileRecord:
    """Everything one file contributes: cached as a unit by content hash."""

    path: str
    scope_path: str
    findings: List[Finding]
    suppressions: _Suppressions
    model: Optional[object] = None   # ModuleModel; None on parse error


class LintRunner:
    """Applies a rule battery (per-file and whole-program) over paths."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        config=None,
        cache=None,
        jobs: int = 1,
    ):
        from repro.lint.config import LintConfig  # local import to avoid cycle

        self.config = config if config is not None else LintConfig()
        all_rules = list(rules) if rules is not None else registered_rules()
        self.rules = [rule for rule in all_rules if self.config.rule_enabled(rule.rule_id)]
        for rule in self.rules:
            override = self.config.scope_override(rule.rule_id)
            if override is not None:
                rule.scope = tuple(override)
        self.file_rules = [rule for rule in self.rules if not rule.whole_program]
        self.project_rules = [rule for rule in self.rules if rule.whole_program]
        self.cache = cache
        self.jobs = max(1, jobs)
        #: The model of the last ``lint_paths``/``lint_sources`` run (the CLI
        #: ``--graph`` dump and tests read it).
        self.last_project = None

    # -- cache identity -----------------------------------------------------

    def battery_signature(self) -> str:
        """Identity of the rule battery: keys per-file cache entries."""
        from repro.lint.analysis.model import MODEL_VERSION

        parts = [f"engine={ENGINE_VERSION}", f"model={MODEL_VERSION}"]
        for rule in sorted(self.rules, key=lambda r: r.rule_id):
            parts.append(
                f"{rule.rule_id}:{int(rule.severity)}:"
                f"{','.join(rule.scope)}:{','.join(rule.exempt)}"
            )
        return ";".join(parts)

    # -- file collection ----------------------------------------------------

    def collect_files(self, paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()  # deterministic traversal
                    dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                    for name in sorted(filenames):
                        if name.endswith(".py"):
                            files.append(os.path.join(dirpath, name))
            elif path.endswith(".py"):
                files.append(path)
        return [f for f in files if not self.config.excluded(scope_path_for(f))]

    # -- per-file linting ----------------------------------------------------

    def _process_source(
        self, source: str, path: str, scope_path: Optional[str] = None
    ) -> _FileRecord:
        """Per-file rules + module model for one source text (no cache)."""
        from repro.lint.analysis.model import build_module_model

        resolved_scope = scope_path if scope_path is not None else scope_path_for(path)
        suppressions = _parse_suppressions(source)
        try:
            module = ModuleInfo.from_source(source, path, resolved_scope)
        except SyntaxError as error:
            finding = Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule_id=PARSE_ERROR_RULE_ID,
                severity=Severity.ERROR,
                message=f"could not parse file: {error.msg}",
            )
            return _FileRecord(path, resolved_scope, [finding], suppressions, None)
        findings = [
            finding
            for rule in self.file_rules
            if rule.applies_to(module)
            for finding in rule.check(module)
        ]
        if self.config.rule_enabled(UNJUSTIFIED_SUPPRESSION_RULE_ID):
            findings.extend(_unjustified_suppression_findings(path, suppressions))
        findings = sorted(
            finding for finding in findings
            if not suppressions.is_suppressed(finding)
        )
        model = build_module_model(
            source, path=path, scope_path=resolved_scope, tree=module.tree
        )
        return _FileRecord(path, resolved_scope, findings, suppressions, model)

    def _process_file(self, path: str) -> _FileRecord:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        if self.cache is None:
            return self._process_source(source, path)
        key = self.cache.key_for(source, self.battery_signature())
        record = self.cache.get(key)
        if isinstance(record, _FileRecord) and record.path == path:
            return record
        record = self._process_source(source, path)
        self.cache.put(key, record)
        return record

    def lint_source(self, source: str, path: str, scope_path: Optional[str] = None) -> List[Finding]:
        """Per-file findings for one source text (no whole-program rules)."""
        return self._process_source(source, path, scope_path).findings

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.lint_source(source, path)

    # -- whole-program linting ----------------------------------------------

    def _records_for(self, paths: Iterable[str]) -> List[_FileRecord]:
        files = self.collect_files(paths)
        if self.jobs > 1 and len(files) > 1:
            return self._records_parallel(files)
        return [self._process_file(path) for path in files]

    def _records_parallel(self, files: List[str]) -> List[_FileRecord]:
        from concurrent.futures import ProcessPoolExecutor

        cache_dir = self.cache.directory if self.cache is not None else None
        payloads = [(path, self.config, cache_dir) for path in files]
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(_process_file_payload, payloads, chunksize=8))
        except (OSError, ValueError):  # no forking allowed (sandboxes)
            return [self._process_file(path) for path in files]

    def _project_findings(self, records: Sequence[_FileRecord]) -> List[Finding]:
        from repro.lint.analysis.model import ProjectModel

        models = [record.model for record in records if record.model is not None]
        project = ProjectModel(models)
        self.last_project = project
        if not self.project_rules:
            return []
        by_path = {record.path: record.suppressions for record in records}
        findings: List[Finding] = []
        for rule in self.project_rules:
            for finding in rule.check_project(project):
                suppressions = by_path.get(finding.path)
                if suppressions is not None and suppressions.is_suppressed(finding):
                    continue
                findings.append(finding)
        return findings

    def lint_paths(self, paths: Iterable[str]) -> List[Finding]:
        records = self._records_for(paths)
        findings: List[Finding] = []
        for record in records:
            findings.extend(record.findings)
        findings.extend(self._project_findings(records))
        return sorted(findings)

    def lint_sources(self, sources: Dict[str, str]) -> List[Finding]:
        """Whole-program lint over in-memory ``{scope_path: source}``."""
        records = [
            self._process_source(source, path=scope_path, scope_path=scope_path)
            for scope_path, source in sorted(sources.items())
        ]
        findings: List[Finding] = []
        for record in records:
            findings.extend(record.findings)
        findings.extend(self._project_findings(records))
        return sorted(findings)

    def build_project(self, paths: Iterable[str]):
        """The :class:`ProjectModel` for ``paths`` (used by ``--graph``)."""
        records = self._records_for(paths)
        from repro.lint.analysis.model import ProjectModel

        models = [record.model for record in records if record.model is not None]
        self.last_project = ProjectModel(models)
        return self.last_project


def _process_file_payload(payload) -> _FileRecord:
    """Worker entry point for ``--jobs``: one file, one record."""
    path, config, cache_dir = payload
    cache = None
    if cache_dir is not None:
        from repro.lint.analysis.cache import AnalysisCache

        cache = AnalysisCache(cache_dir)
    runner = LintRunner(config=config, cache=cache)
    return runner._process_file(path)


def lint_source(
    source: str,
    scope_path: str = "repro/sim/fixture.py",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string as if it lived at ``scope_path`` (test helper)."""
    runner = LintRunner(rules=rules)
    return runner.lint_source(source, path=scope_path, scope_path=scope_path)


def lint_project(
    sources: Dict[str, str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Whole-program lint over ``{scope_path: source}`` (test helper)."""
    runner = LintRunner(rules=rules)
    return runner.lint_sources(sources)
