"""Static-analysis suite enforcing the reproduction's core invariants.

``repro.lint`` walks Python ASTs and checks the three properties the
RAPTEE reproduction's claims rest on (see ``src/repro/lint/README.md``):

1. **Determinism** — seeded runs are bit-for-bit reproducible;
2. **Enclave boundary** — untrusted code reaches enclave state only
   through declared ECALLs;
3. **Crypto hygiene** — constant-time comparisons, no OS entropy or weak
   hashes near key material;

plus **sim purity** (no I/O in protocol hot paths) and four *whole-program
flow families* built on :mod:`repro.lint.analysis` (project symbol table,
call graph, interprocedural taint): seed provenance, secret flow, pool
picklability and snapshot completeness.  Run it with
``python -m repro.lint [paths]`` or ``repro lint``; configure it via
``[tool.repro-lint]`` in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.core import (
    Finding,
    LintRunner,
    ModuleInfo,
    ProjectRule,
    Rule,
    Severity,
    lint_project,
    lint_source,
    register_rule,
    registered_rules,
)
from repro.lint.reporter import render_json, render_sarif, render_text

__all__ = [
    "Finding",
    "LintConfig",
    "LintRunner",
    "ModuleInfo",
    "ProjectRule",
    "Rule",
    "Severity",
    "lint_project",
    "lint_source",
    "load_config",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
]
