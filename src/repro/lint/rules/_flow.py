"""Shared scaffolding for the whole-program flow rules.

Each flow family is a :class:`~repro.lint.core.ProjectRule` wrapping one
:class:`~repro.lint.analysis.dataflow.TaintPolicy`: the rule builds (or
reuses) the project call graph, runs the interprocedural taint engine and
turns surviving sink hits into findings.  Everything family-specific —
sources, sinks, sanitizers, message wording — lives in the policy.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.lint.analysis.callgraph import CallGraph
from repro.lint.analysis.dataflow import SinkHit, TaintPolicy, evaluate_bindings
from repro.lint.analysis.model import FunctionModel, ModuleModel, ProjectModel
from repro.lint.analysis.taint import TaintAnalysis
from repro.lint.core import Finding, ProjectRule

__all__ = ["FlowRule", "dotted_target", "receiver_ident", "constructor_binding"]


def dotted_target(project: ProjectModel, module: ModuleModel,
                  call: tuple) -> Optional[str]:
    """The dotted name a call's callee resolves to, project or stdlib.

    Unlike the call graph (which only keeps edges to project functions and
    builtins), this also names stdlib callees — ``random.Random``,
    ``time.time`` — which is exactly what source/sink matching needs.
    """
    func = call[1]
    if func[0] == "name":
        return project.resolve_name(module, func[1])
    if func[0] == "attr":
        return project.resolve_value(module, func)
    return None


def receiver_ident(func: tuple) -> Optional[str]:
    """Last identifier of an attribute call's receiver.

    ``net.request(...)`` -> ``net``; ``self._network.request(...)`` ->
    ``_network``.  Name heuristics fall back on this when the receiver's
    type cannot be resolved.
    """
    if func[0] != "attr":
        return None
    base = func[1]
    if base[0] == "name":
        return base[1]
    if base[0] == "attr":
        return base[2]
    return None


def constructor_binding(project: ProjectModel, module: ModuleModel,
                        fn: FunctionModel, bindings: Dict[str, tuple],
                        func: tuple) -> Optional[str]:
    """Dotted class a method call's receiver was constructed from, if known.

    Handles ``pool = ProcessPoolExecutor(...)`` / ``with ... as pool:``
    followed by ``pool.submit(...)`` — including stdlib classes the call
    graph itself cannot type.
    """
    if func[0] != "attr" or func[1][0] != "name":
        return None
    bound = bindings.get(func[1][1])
    if bound is None or bound[0] != "call":
        return None
    ctor = bound[1]
    if ctor[0] == "name":
        return project.resolve_name(module, ctor[1])
    if ctor[0] == "attr":
        return project.resolve_value(module, ctor)
    return None


class FlowRule(ProjectRule):
    """Run one taint policy over the project and report its sink hits."""

    def make_policy(self, project: ProjectModel) -> TaintPolicy:
        raise NotImplementedError

    def describe_hit(self, hit: SinkHit) -> str:
        labels = ", ".join(sorted(hit.labels))
        message = f"{labels} reaches {hit.sink}"
        if hit.via:
            message += f" (via {' -> '.join(hit.via)})"
        return message

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        callgraph = CallGraph.for_project(project)
        analysis = TaintAnalysis(project, callgraph, self.make_policy(project))
        for hit in analysis.run():
            if not self.scope_allows(hit.scope_path):
                continue
            yield self.finding_at(
                hit.path, hit.lineno, hit.col, self.describe_hit(hit)
            )


class BindingAwarePolicy(TaintPolicy):
    """A policy with memoised per-function name bindings."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self._bindings: Dict[int, Dict[str, tuple]] = {}

    def bindings_for(self, fn: FunctionModel) -> Dict[str, tuple]:
        cached = self._bindings.get(id(fn))
        if cached is None:
            cached = evaluate_bindings(fn)
            self._bindings[id(fn)] = cached
        return cached

    def dotted(self, module: ModuleModel, call: tuple) -> Optional[str]:
        return dotted_target(self.project, module, call)
