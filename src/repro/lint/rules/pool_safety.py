"""Pool safety: only picklable work may enter a process pool or seed store.

PR 5's PollutionProbe bug — a nested class handed to ``repeat(...,
workers=N)`` — crashed only when a run actually used a pool, which CI's
small configs never did.  This family catches the whole shape statically:
lambdas, closures, local functions/classes and handle-holding objects that
flow (possibly through helpers) into ``repeat()`` with ``workers``, a
``ProcessPoolExecutor.submit/map`` call, or a ``SeedResultStore`` record.

``repeat()`` without ``workers`` runs serially and pickles nothing, so
serial callers may pass lambdas freely — the guard is flow-aware both for
direct calls and through function summaries.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.lint.analysis.model import FunctionModel, ModuleModel, ProjectModel
from repro.lint.core import Severity, register_rule
from repro.lint.rules._flow import (
    BindingAwarePolicy,
    FlowRule,
    constructor_binding,
)

__all__ = ["UnpicklableTaskFlowRule"]

_POOL_CLASSES = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
})

#: Constructor calls whose instances hold OS handles (unpicklable).
_HANDLE_CTORS = frozenset({
    "builtins.open", "io.open", "threading.Lock", "threading.RLock",
    "threading.Event", "threading.Condition", "threading.Thread",
    "socket.socket", "tempfile.NamedTemporaryFile", "sqlite3.connect",
})

#: Containers/combinators that preserve element picklability facts.
_TRANSPARENT = frozenset({
    "builtins.sorted", "builtins.list", "builtins.tuple", "builtins.set",
    "builtins.min", "builtins.max", "builtins.reversed", "builtins.sum",
})


def _has_workers(call: tuple) -> bool:
    """True when a ``repeat(...)`` call can reach the process pool."""
    if len(call[2]) >= 3:          # repeat(fn, seeds, workers, ...)
        third = call[2][2]
        return third != ("const", "none")
    for name, value in call[3]:
        if name == "workers":
            return value != ("const", "none")
    return False


def _is_repeat(dotted: Optional[str], targets: Sequence[str]) -> bool:
    full = "repro.experiments.runner.repeat"
    return dotted == full or full in targets


class _PoolSafetyPolicy(BindingAwarePolicy):
    def value_sources(self, value: tuple, fn: FunctionModel,
                      module: ModuleModel) -> Set[str]:
        kind = value[0]
        if kind == "lambda":
            return {"a lambda"}
        if kind == "localfunc":
            # Local defs never pickle (no importable qualname); ones with
            # free variables are closures over live state on top of that.
            return {"a closure" if value[2] else "a local function"}
        if kind == "localclass":
            return {"a local class"}
        return set()

    def call_result_sources(self, call: tuple, targets: Sequence[str],
                            constructed: Optional[str], fn: FunctionModel,
                            module: ModuleModel) -> Set[str]:
        dotted = self.dotted(module, call)
        if dotted in _HANDLE_CTORS:
            return {f"an OS-handle object ({dotted.rsplit('.', 1)[1]}())"}
        func = call[1]
        if func[0] == "name":
            # Constructing a class defined inside this very function — the
            # exact shape of the PR 5 PollutionProbe bug.
            bound = self.bindings_for(fn).get(func[1])
            if bound is not None and bound[0] == "localclass":
                return {f"an instance of local class {bound[1]}"}
        if constructed is not None:
            cls = self.project.class_model(constructed)
            if cls is not None:
                if cls.is_nested:
                    return {f"an instance of local class {cls.name}"}
                if cls.getstate is None:
                    # Resolve the stored constructor in the class's own
                    # module: that is where its imports live.
                    owner_name = cls.qualname.rsplit(".", 1)[0]
                    owner = self.project.modules.get(owner_name, module)
                    for attr in cls.init_attrs.values():
                        if attr.value[0] != "call":
                            continue
                        ctor = self.dotted(owner, attr.value)
                        if ctor in _HANDLE_CTORS:
                            return {
                                f"an instance of {cls.name} "
                                f"(holds {ctor.rsplit('.', 1)[1]}() in "
                                f"self.{attr.name}, no __getstate__)"
                            }
        return set()

    def is_sanitizer(self, call: tuple, targets: Sequence[str],
                     fn: FunctionModel, module: ModuleModel) -> bool:
        return False

    def propagates_through_unknown_call(self, call: tuple,
                                        targets: Sequence[str]) -> bool:
        # functools.partial(lambda, ...) stays unpicklable; keep default.
        return True

    def _pool_receiver(self, fn: FunctionModel, module: ModuleModel,
                       func: tuple) -> bool:
        ctor = constructor_binding(
            self.project, module, fn, self.bindings_for(fn), func
        )
        return ctor in _POOL_CLASSES

    def sinks_for_call(self, call, targets, constructed, fn, module):
        sinks: List = []
        dotted = self.dotted(module, call)
        func = call[1]
        if _is_repeat(dotted, targets) and _has_workers(call):
            sinks.append(("repeat() with a process pool", None))
        if func[0] == "attr" and func[2] in ("submit", "map") and \
                self._pool_receiver(fn, module, func):
            sinks.append((f"ProcessPoolExecutor.{func[2]}()", None))
        if func[0] == "attr" and func[2] == "record" and (
            any(".SeedResultStore." in t for t in targets)
            or constructor_binding(
                self.project, module, fn, self.bindings_for(fn), func
            ) == "repro.snapshot.seedstore.SeedResultStore"
        ):
            sinks.append(("a SeedResultStore checkpoint", None))
        return sinks

    def param_sink_applies(self, callee: str, sink: str, call: tuple,
                           fn: FunctionModel, module: ModuleModel) -> bool:
        # repeat() only touches the pool when workers is set; a serial
        # caller passing a lambda is fine even though the pool sink is
        # reachable from repeat's first parameter.
        if callee == "repro.experiments.runner.repeat":
            return _has_workers(call)
        return True


@register_rule
class UnpicklableTaskFlowRule(FlowRule):
    """Unpicklable callables/objects reaching process-pool submission."""

    rule_id = "flow-unpicklable-task"
    description = "unpicklable task or payload reaches a process pool or checkpoint"
    severity = Severity.ERROR
    rationale = (
        "Pool submission pickles by importable qualname: lambdas, "
        "closures, local classes and handle-holders only fail at runtime "
        "on parallel configs, which is exactly when nobody is watching."
    )
    scope = ()   # everywhere, tests included: the guard is the workers flag

    def make_policy(self, project: ProjectModel):
        return _PoolSafetyPolicy(project)
