"""Secret flow: enclave key material must not leave through observable channels.

RAPTEE's security argument assumes the provisioned group key, sealing keys
and sealed-blob plaintext exist only inside enclave logic.  The enclave
boundary rules stop *code* from crossing; this family stops *data*: a key
that flows into a log line, a telemetry event, a plaintext network payload
or a snapshot envelope is gone, whatever module wrote the call.

Sources
    ``self._group_key`` reads, ``sealing_key_for``/``Enclave._sealing_key``
    results, ``unseal(...)`` plaintext, AES key-schedule material.

Sinks
    ``print``/``logging``; telemetry emission; ``Network.request`` payloads
    and handler returns; ``write_envelope``/``save`` snapshot state.

Sanitizers
    Encryption (``encrypt``, ``encrypt_block``, ``seal``, ``keystream``)
    and digesting (``sha256``, ``hexdigest``, ``digest``) — a ciphertext or
    fingerprint may travel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.lint.analysis.model import FunctionModel, ModuleModel, ProjectModel
from repro.lint.core import Severity, register_rule
from repro.lint.rules._flow import BindingAwarePolicy, FlowRule, receiver_ident

__all__ = ["SecretLeakFlowRule"]

_SECRET_ATTRS = frozenset({"_group_key", "group_key", "_sealing_key_cache"})

#: Callee name -> label for calls whose *result* is secret.
_SECRET_RESULTS = {
    "sealing_key_for": "sealing-key",
    "_sealing_key": "sealing-key",
    "unseal": "sealed-plaintext",
    "key_schedule": "key-schedule",
    "_key_schedule": "key-schedule",
}

_SANITIZER_NAMES = frozenset({
    "encrypt", "encrypt_block", "seal", "keystream", "sha256", "sha256_bytes",
    "hexdigest", "digest", "fingerprint", "hmac_sha256", "constant_time_eq",
})

_LOG_METHODS = frozenset({
    "debug", "info", "warning", "error", "critical", "exception", "log",
})


class _SecretFlowPolicy(BindingAwarePolicy):
    def value_sources(self, value: tuple, fn: FunctionModel,
                      module: ModuleModel) -> Set[str]:
        if value[0] == "attr" and value[2] in _SECRET_ATTRS:
            return {"enclave-group-key" if "group_key" in value[2] else "sealing-key"}
        return set()

    def call_result_sources(self, call: tuple, targets: Sequence[str],
                            constructed: Optional[str], fn: FunctionModel,
                            module: ModuleModel) -> Set[str]:
        func = call[1]
        name = func[1] if func[0] == "name" else (
            func[2] if func[0] == "attr" else None
        )
        label = _SECRET_RESULTS.get(name or "")
        return {label} if label else set()

    def is_sanitizer(self, call: tuple, targets: Sequence[str],
                     fn: FunctionModel, module: ModuleModel) -> bool:
        func = call[1]
        name = func[1] if func[0] == "name" else (
            func[2] if func[0] == "attr" else None
        )
        return name in _SANITIZER_NAMES

    def sinks_for_call(self, call, targets, constructed, fn, module):
        sinks: List = []
        func = call[1]
        dotted = self.dotted(module, call) or ""

        if dotted == "builtins.print":
            sinks.append(("stdout (print)", None))
        receiver = receiver_ident(func)
        if func[0] == "attr" and func[2] in _LOG_METHODS and receiver and (
            "log" in receiver.lower()
        ):
            sinks.append(("a log record", None))
        if dotted.startswith("logging."):
            sinks.append(("a log record", None))

        if dotted.startswith("repro.telemetry") or any(
            t.startswith("repro.telemetry") for t in targets
        ):
            sinks.append(("telemetry", None))
        if func[0] == "attr" and func[2] in ("event", "emit", "observe") and \
                receiver and "telemetr" in receiver.lower():
            sinks.append(("telemetry", None))

        network_target = any(".Network." in t for t in targets)
        if func[0] == "attr" and func[2] in ("request", "send_push", "respond"):
            if network_target or (receiver and "net" in receiver.lower()):
                # Plaintext payload: the wire cipher is applied inside
                # Network, but only to bytes it recognises; anything secret
                # must already be sealed/encrypted by the caller.
                sinks.append(("a network payload outside AesCtr", None))

        if dotted.endswith("write_envelope") or any(
            t.endswith("write_envelope") for t in targets
        ):
            sinks.append(("a snapshot envelope", None))
        if any(t.endswith("snapshot.capture.save") for t in targets):
            sinks.append(("a snapshot envelope", None))
        return sinks


@register_rule
class SecretLeakFlowRule(FlowRule):
    """Key material reaching logs, telemetry, payloads or snapshots."""

    rule_id = "flow-secret-leak"
    description = "enclave key material flows to an observable channel"
    rationale = (
        "The group key, sealing keys and unsealed plaintext underwrite the "
        "Byzantine-resilience claims; one log line or snapshot field "
        "containing them voids the threat model even in simulation."
    )
    severity = Severity.ERROR
    scope = ("repro/",)

    def make_policy(self, project: ProjectModel):
        return _SecretFlowPolicy(project)
