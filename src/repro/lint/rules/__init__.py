"""The rule battery: importing this package registers every rule.

Four families, one module each:

* :mod:`repro.lint.rules.determinism` — seeded runs must be bit-for-bit
  reproducible (``det-*``);
* :mod:`repro.lint.rules.enclave_boundary` — untrusted code enters the
  enclave only through ECALLs (``enclave-*``);
* :mod:`repro.lint.rules.crypto_hygiene` — constant-time comparisons, no
  stdlib random near keys, no weak hashes (``crypto-*``);
* :mod:`repro.lint.rules.sim_purity` — no I/O in protocol hot paths
  (``purity-*``).
"""

from repro.lint.rules.crypto_hygiene import (
    DigestCompareRule,
    StdlibRandomImportRule,
    WeakHashRule,
)
from repro.lint.rules.determinism import (
    GlobalRandomRule,
    OsEntropyRule,
    SetIterationRule,
    UnguardedNumpyRule,
    WallClockRule,
)
from repro.lint.rules.enclave_boundary import (
    EnclaveBoundaryBypassRule,
    EnclaveInternalImportRule,
    EnclavePrivateAccessRule,
)
from repro.lint.rules.sim_purity import IoRule, PrintRule

__all__ = [
    "DigestCompareRule",
    "StdlibRandomImportRule",
    "WeakHashRule",
    "GlobalRandomRule",
    "OsEntropyRule",
    "SetIterationRule",
    "UnguardedNumpyRule",
    "WallClockRule",
    "EnclaveBoundaryBypassRule",
    "EnclaveInternalImportRule",
    "EnclavePrivateAccessRule",
    "IoRule",
    "PrintRule",
]
