"""The rule battery: importing this package registers every rule.

Per-file families, one module each:

* :mod:`repro.lint.rules.determinism` — seeded runs must be bit-for-bit
  reproducible (``det-*``);
* :mod:`repro.lint.rules.enclave_boundary` — untrusted code enters the
  enclave only through ECALLs (``enclave-*``);
* :mod:`repro.lint.rules.crypto_hygiene` — constant-time comparisons, no
  stdlib random near keys, no weak hashes (``crypto-*``);
* :mod:`repro.lint.rules.sim_purity` — no I/O in protocol hot paths
  (``purity-*``).

Whole-program families (built on :mod:`repro.lint.analysis`):

* :mod:`repro.lint.rules.seed_provenance` — ``flow-unseeded-entropy``:
  ambient entropy laundered through helpers into protocol state;
* :mod:`repro.lint.rules.secret_flow` — ``flow-secret-leak``: enclave key
  material reaching logs, telemetry, payloads or snapshots;
* :mod:`repro.lint.rules.pool_safety` — ``flow-unpicklable-task``:
  lambdas/closures/handle-holders reaching process-pool submission;
* :mod:`repro.lint.rules.snapshot_completeness` — ``snapshot-missing-attr``:
  ``__getstate__``/``__setstate__`` dropping ``__init__`` state.
"""

from repro.lint.rules.crypto_hygiene import (
    DigestCompareRule,
    StdlibRandomImportRule,
    WeakHashRule,
)
from repro.lint.rules.determinism import (
    GlobalRandomRule,
    OsEntropyRule,
    SetIterationRule,
    UnguardedNumpyRule,
    WallClockRule,
)
from repro.lint.rules.enclave_boundary import (
    EnclaveBoundaryBypassRule,
    EnclaveInternalImportRule,
    EnclavePrivateAccessRule,
)
from repro.lint.rules.pool_safety import UnpicklableTaskFlowRule
from repro.lint.rules.secret_flow import SecretLeakFlowRule
from repro.lint.rules.seed_provenance import UnseededEntropyFlowRule
from repro.lint.rules.sim_purity import IoRule, PrintRule
from repro.lint.rules.snapshot_completeness import SnapshotMissingAttrRule

__all__ = [
    "DigestCompareRule",
    "StdlibRandomImportRule",
    "WeakHashRule",
    "GlobalRandomRule",
    "OsEntropyRule",
    "SetIterationRule",
    "UnguardedNumpyRule",
    "WallClockRule",
    "EnclaveBoundaryBypassRule",
    "EnclaveInternalImportRule",
    "EnclavePrivateAccessRule",
    "IoRule",
    "PrintRule",
    "UnseededEntropyFlowRule",
    "SecretLeakFlowRule",
    "UnpicklableTaskFlowRule",
    "SnapshotMissingAttrRule",
]
