"""Snapshot completeness: pickle hooks must account for every init attribute.

``repro.snapshot`` round-trips live objects through pickle; a
``__getstate__`` that drops an attribute the class's ``__init__`` creates —
without a ``__setstate__`` that rebuilds it — resumes into an object
missing state, and the failure surfaces rounds later as a determinism
divergence rather than at restore time.  This rule cross-checks, per class:

* attributes ``__init__`` assigns (the project model records them, with
  mutability),
* what ``__getstate__`` removes (``del state[...]`` / ``state.pop(...)``)
  versus merely *resets* to a fresh literal (allowed: the key survives),
* what ``__setstate__`` reassigns.

A dropped-but-never-restored attribute is an error.  Classes without
pickle hooks are out of scope — default pickling is complete by
construction.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis.model import ProjectModel
from repro.lint.core import Finding, ProjectRule, Severity, register_rule

__all__ = ["SnapshotMissingAttrRule"]


@register_rule
class SnapshotMissingAttrRule(ProjectRule):
    """``__getstate__`` drops an ``__init__`` attribute nobody restores."""

    rule_id = "snapshot-missing-attr"
    description = "__getstate__ drops an attribute __setstate__ never restores"
    rationale = (
        "An attribute missing after restore does not crash at restore "
        "time; it corrupts the resumed run and shows up as a determinism "
        "divergence far from the cause."
    )
    severity = Severity.ERROR
    scope = ("repro/",)

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for cls in project.all_classes():
            if cls.getstate is None:
                continue
            module = project.modules.get(cls.qualname.rsplit(".", 1)[0])
            if module is None or not self.scope_allows(module.scope_path):
                continue
            # Only explicit reassignment restores a missing key —
            # ``self.__dict__.update(state)`` cannot resurrect what the
            # state dict does not contain.
            restored = set(cls.setstate.assigned_attrs) if cls.setstate else set()

            for name in cls.getstate.dropped:
                if name in restored or name not in cls.init_attrs:
                    continue
                attr = cls.init_attrs[name]
                yield self.finding_at(
                    module.path, cls.getstate.lineno, 0,
                    f"{cls.name}.__getstate__ drops self.{name} "
                    f"(set in __init__ at line {attr.lineno}) and "
                    f"__setstate__ never restores it",
                )

            if cls.getstate.explicit_keys is not None:
                kept = set(cls.getstate.explicit_keys)
                for name, attr in sorted(cls.init_attrs.items()):
                    if name in kept or name in restored:
                        continue
                    if not attr.mutable:
                        continue   # immutables are likely derived/constant
                    yield self.finding_at(
                        module.path, cls.getstate.lineno, 0,
                        f"{cls.name}.__getstate__ returns an explicit state "
                        f"dict that omits mutable attribute self.{name} "
                        f"(set in __init__ at line {attr.lineno})",
                    )
