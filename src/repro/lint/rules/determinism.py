"""Determinism rules.

The paper's figures are reproduced from seeded runs, so every simulation
must be bit-for-bit deterministic under its seed (DESIGN.md; see also
:func:`repro.crypto.prng.derive_seed`).  These rules catch the classic ways
Python code silently breaks that property: the process-global ``random``
module, wall-clock reads, OS entropy, and iteration over unordered sets.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.core import Finding, ModuleInfo, Rule, Severity, register_rule

__all__ = [
    "GlobalRandomRule",
    "WallClockRule",
    "OsEntropyRule",
    "SetIterationRule",
    "UnguardedNumpyRule",
]

#: Protocol packages whose behaviour feeds the paper's metrics.
PROTOCOL_SCOPE: Tuple[str, ...] = (
    "repro/sim",
    "repro/brahms",
    "repro/gossip",
    "repro/core",
    "repro/adversary",
)

#: Functions on the ``random`` module that consume the *global* hidden state.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "betavariate", "gammavariate", "paretovariate",
        "weibullvariate", "vonmisesvariate", "triangular", "getrandbits",
        "randbytes", "seed", "setstate", "getstate", "binomialvariate",
    }
)


def _called_func(node: ast.AST):
    return node.func if isinstance(node, ast.Call) else None


@register_rule
class GlobalRandomRule(Rule):
    """Ban the process-global ``random`` state in reproduction code."""

    rule_id = "det-global-random"
    description = "call to the global random module's hidden-state functions"
    rationale = (
        "The global random.* state is shared process-wide: any library call "
        "or test ordering change perturbs every stream after it.  Randomness "
        "must flow through an injected random.Random / Sha256Prng."
    )
    severity = Severity.ERROR
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = module.import_aliases("random")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name not in ("Random",)]
                if bad:
                    yield self.finding(
                        module,
                        node,
                        f"from random import {', '.join(bad)} binds global-state "
                        f"helpers; inject a random.Random/Sha256Prng instead",
                    )
            func = _called_func(node)
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
                and func.attr in _GLOBAL_RANDOM_FUNCS
            ):
                yield self.finding(
                    module,
                    node,
                    f"random.{func.attr}() uses the process-global PRNG; "
                    f"draw from an injected random.Random/Sha256Prng",
                )


@register_rule
class WallClockRule(Rule):
    """Ban wall-clock reads; simulated time comes from the engine."""

    rule_id = "det-wall-clock"
    description = "wall-clock read (time.time, datetime.now, ...)"
    rationale = (
        "Simulated rounds are the only clock the protocol may observe; a "
        "wall-clock read makes runs differ between machines and executions."
    )
    severity = Severity.ERROR
    scope = ("repro",)

    _TIME_FUNCS = frozenset(
        {
            "time", "time_ns", "monotonic", "monotonic_ns",
            "perf_counter", "perf_counter_ns", "process_time",
            "process_time_ns", "clock_gettime",
        }
    )
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        time_aliases = module.import_aliases("time")
        datetime_aliases = module.import_aliases("datetime")
        # `from datetime import datetime, date` binds class names locally.
        datetime_classes: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_classes.add(alias.asname or alias.name)
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in self._TIME_FUNCS]
                if bad:
                    yield self.finding(
                        module, node,
                        f"from time import {', '.join(bad)} reads the wall "
                        f"clock; use the simulation round counter",
                    )
        for node in ast.walk(module.tree):
            func = _called_func(node)
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if isinstance(base, ast.Name) and base.id in time_aliases and func.attr in self._TIME_FUNCS:
                yield self.finding(
                    module, node,
                    f"time.{func.attr}() is nondeterministic; use the "
                    f"simulation round counter / cycle accountant",
                )
            if func.attr in self._DATETIME_FUNCS:
                if isinstance(base, ast.Name) and base.id in datetime_classes:
                    yield self.finding(
                        module, node,
                        f"{base.id}.{func.attr}() reads the wall clock; "
                        f"derive timestamps from the simulation state",
                    )
                elif (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in datetime_aliases
                ):
                    yield self.finding(
                        module, node,
                        f"datetime.{base.attr}.{func.attr}() reads the wall "
                        f"clock; derive timestamps from the simulation state",
                    )


@register_rule
class OsEntropyRule(Rule):
    """Ban OS entropy sources that cannot be seeded."""

    rule_id = "det-os-entropy"
    description = "unseedable OS entropy (os.urandom, secrets, uuid4, SystemRandom)"
    rationale = (
        "os.urandom / secrets / SystemRandom / uuid4 pull from the kernel "
        "CSPRNG and can never reproduce a run.  Protocol randomness comes "
        "from Sha256Prng, which is deterministic under the experiment seed."
    )
    severity = Severity.ERROR
    scope = ()  # everywhere, including tests

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        os_aliases = module.import_aliases("os")
        random_aliases = module.import_aliases("random")
        uuid_aliases = module.import_aliases("uuid")
        secrets_aliases = module.import_aliases("secrets")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "secrets":
                        yield self.finding(
                            module, node,
                            "import secrets pulls kernel entropy; use the "
                            "injected Sha256Prng",
                        )
            if isinstance(node, ast.ImportFrom):
                if node.module == "os" and any(a.name == "urandom" for a in node.names):
                    yield self.finding(
                        module, node,
                        "from os import urandom is unseedable; use Sha256Prng.bytes()",
                    )
                if node.module == "secrets":
                    yield self.finding(
                        module, node,
                        "the secrets module pulls kernel entropy; use Sha256Prng",
                    )
                if node.module == "random" and any(
                    a.name == "SystemRandom" for a in node.names
                ):
                    yield self.finding(
                        module, node,
                        "SystemRandom is unseedable; use Sha256Prng",
                    )
            func = _called_func(node)
            if not isinstance(func, ast.Attribute) or not isinstance(func.value, ast.Name):
                continue
            base, attr = func.value.id, func.attr
            if base in os_aliases and attr == "urandom":
                yield self.finding(
                    module, node,
                    "os.urandom() is unseedable; use Sha256Prng.bytes()",
                )
            elif base in random_aliases and attr == "SystemRandom":
                yield self.finding(
                    module, node,
                    "random.SystemRandom is unseedable; use Sha256Prng",
                )
            elif base in uuid_aliases and attr in ("uuid1", "uuid4"):
                yield self.finding(
                    module, node,
                    f"uuid.{attr}() is nondeterministic; derive IDs from "
                    f"repro.crypto.hashing.int_digest",
                )
            elif base in secrets_aliases:
                yield self.finding(
                    module, node,
                    f"secrets.{attr}() pulls kernel entropy; use Sha256Prng",
                )


@register_rule
class UnguardedNumpyRule(Rule):
    """Require numpy imports in the perf layer to be ImportError-guarded."""

    rule_id = "det-unguarded-numpy"
    description = "numpy import not guarded by try/except ImportError"
    rationale = (
        "numpy is an optional accelerator, never a requirement: the fast "
        "paths must fall back to the pure-Python reference when it is "
        "absent (ISSUE acceptance: 'numpy off by default when absent'). "
        "A bare import would turn a missing wheel into an ImportError at "
        "module load instead of a silent, equivalent fallback."
    )
    severity = Severity.ERROR
    scope = ("repro/perf",)

    _GUARD_EXCEPTIONS = frozenset({"ImportError", "ModuleNotFoundError", "Exception"})

    def _handler_guards_import_error(self, handler: ast.ExceptHandler) -> bool:
        exc = handler.type
        if exc is None:  # bare except
            return True
        names = exc.elts if isinstance(exc, ast.Tuple) else [exc]
        for name in names:
            if isinstance(name, ast.Name) and name.id in self._GUARD_EXCEPTIONS:
                return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        guarded: Set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            if not any(self._handler_guards_import_error(h) for h in node.handlers):
                continue
            for child in node.body:
                end = getattr(child, "end_lineno", child.lineno)
                guarded.update(range(child.lineno, end + 1))
        for node in ast.walk(module.tree):
            is_numpy = (
                isinstance(node, ast.Import)
                and any(a.name.split(".")[0] == "numpy" for a in node.names)
            ) or (
                isinstance(node, ast.ImportFrom)
                and node.module is not None
                and node.module.split(".")[0] == "numpy"
            )
            if not is_numpy:
                continue
            if node.lineno in guarded or node.lineno in module.type_checking:
                continue
            yield self.finding(
                module,
                node,
                "numpy import must sit inside try/except ImportError so the "
                "perf layer degrades to the pure-Python reference path",
            )


@register_rule
class SetIterationRule(Rule):
    """Flag iteration over freshly-built unordered sets in protocol code."""

    rule_id = "det-set-iteration"
    description = "iteration over an unordered set expression"
    rationale = (
        "Set iteration order depends on insertion history and, for str "
        "keys, on the per-process hash seed — identical runs can visit "
        "peers in different orders.  Wrap the set in sorted(...)."
    )
    severity = Severity.WARNING
    scope = PROTOCOL_SCOPE

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            targets = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                targets.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                targets.extend(generator.iter for generator in node.generators)
            for target in targets:
                if self._is_set_expression(target):
                    yield self.finding(
                        module,
                        target,
                        "iterating an unordered set; wrap it in sorted(...) "
                        "so traversal order is deterministic",
                    )
