"""Enclave-boundary rules.

The emulation models exactly one SGX property (DESIGN.md): *untrusted code
enters the enclave only through declared ECALLs*.  At runtime
:class:`~repro.sgx.enclave.EnclaveHost` enforces that with ``__getattr__``,
but Python offers plenty of side doors (``object.__getattribute__``,
importing enclave internals, reading ``_``-prefixed state).  These rules
close them at review time.  ReplicaTEE and Proteus both report that TEE
systems fail *silently* when the trusted/untrusted boundary is crossed by
accident — the bug class these rules exist for.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.core import Finding, ModuleInfo, Rule, Severity, register_rule

__all__ = [
    "EnclavePrivateAccessRule",
    "EnclaveInternalImportRule",
    "EnclaveBoundaryBypassRule",
]

#: Modules allowed to touch enclave internals: the TCB itself plus tests
#: (the Enclave docstring explicitly grants tests direct construction).
TRUSTED_PATHS: Tuple[str, ...] = (
    "repro/sgx",
    "repro/core/enclave.py",
    "tests",
)

#: Names importable from the enclave modules by untrusted code.  Everything
#: else (``sealing_key_for``, ``_``-prefixed helpers) is TCB-internal.
_ENCLAVE_MODULES = ("repro.sgx.enclave", "repro.core.enclave")
_INTERNAL_NAMES = frozenset({"sealing_key_for"})


def _is_enclaveish_name(identifier: str) -> bool:
    return "enclave" in identifier.lower()


@register_rule
class EnclavePrivateAccessRule(Rule):
    """No reads of ``_``-prefixed state on enclave objects outside the TCB."""

    rule_id = "enclave-private-access"
    description = "access to _-prefixed enclave state outside the TCB"
    rationale = (
        "Enclave state is unreachable from untrusted code on real SGX; "
        "reading it in the emulation silently models an impossible attack "
        "path and voids the Byzantine-resilience claims."
    )
    severity = Severity.ERROR
    scope = ()
    exempt = TRUSTED_PATHS

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            base = node.value
            # host._enclave is the raw reference EnclaveHost guards; any
            # attribute chain ending there is a boundary crossing.
            if attr == "_enclave":
                yield self.finding(
                    module, node,
                    "._enclave reaches the raw enclave object behind the "
                    "host; call an @ecall method instead",
                )
                continue
            if (
                isinstance(base, ast.Name)
                and base.id != "self"
                and _is_enclaveish_name(base.id)
            ):
                yield self.finding(
                    module, node,
                    f"{base.id}.{attr} reads enclave-private state; only "
                    f"@ecall methods cross the boundary",
                )


@register_rule
class EnclaveInternalImportRule(Rule):
    """No imports of enclave internals outside the TCB."""

    rule_id = "enclave-internal-import"
    description = "import of enclave-internal helpers outside the TCB"
    rationale = (
        "sealing_key_for and _-prefixed helpers exist for repro.sgx only; "
        "importing them elsewhere clones sealing keys outside the enclave."
    )
    severity = Severity.ERROR
    scope = ()
    exempt = TRUSTED_PATHS

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom) or node.module not in _ENCLAVE_MODULES:
                continue
            for alias in node.names:
                if alias.name == "*":
                    yield self.finding(
                        module, node,
                        f"star-import from {node.module} drags enclave "
                        f"internals across the boundary",
                    )
                elif alias.name.startswith("_") or alias.name in _INTERNAL_NAMES:
                    yield self.finding(
                        module, node,
                        f"{node.module}.{alias.name} is TCB-internal and "
                        f"must not be imported by untrusted code",
                    )


@register_rule
class EnclaveBoundaryBypassRule(Rule):
    """No reflection tricks that defeat the EnclaveHost guard."""

    rule_id = "enclave-boundary-bypass"
    description = "reflection bypass of the ECALL guard"
    rationale = (
        "object.__getattribute__ / object.__setattr__ / getattr(x, '_...') "
        "sidestep EnclaveHost.__getattr__, the sole runtime enforcement of "
        "the ECALL boundary."
    )
    severity = Severity.ERROR
    scope = ()
    exempt = TRUSTED_PATHS

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
                and func.attr in ("__getattribute__", "__setattr__")
            ):
                yield self.finding(
                    module, node,
                    f"object.{func.attr}() bypasses the EnclaveHost "
                    f"attribute guard",
                )
                continue
            if (
                isinstance(func, ast.Name)
                and func.id in ("getattr", "setattr")
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                and node.args[1].value.startswith("_")
                and isinstance(node.args[0], ast.Name)
                and (_is_enclaveish_name(node.args[0].id) or "host" in node.args[0].id.lower())
            ):
                yield self.finding(
                    module, node,
                    f"{func.id}({node.args[0].id}, {node.args[1].value!r}) "
                    f"reaches private enclave state reflectively",
                )
