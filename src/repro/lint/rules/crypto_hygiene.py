"""Crypto-hygiene rules.

The auth handshake (§IV-A) and attestation pipeline compare MACs, digests
and key bindings; RAPTEE's trusted nodes derive key material inside the
enclave.  These rules enforce the two habits that keep the emulation
faithful: secret-bearing comparisons are constant-time
(:func:`repro.crypto.hashing.constant_time_equal`), and key/nonce
randomness never touches the stdlib ``random`` module or weak hashes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ModuleInfo, Rule, Severity, register_rule

__all__ = ["StdlibRandomImportRule", "DigestCompareRule", "WeakHashRule"]

#: Call results that are digests / MACs / signatures.
_DIGEST_FUNCS = frozenset({"sha256", "hmac_sha256", "concat_hash", "hkdf"})
_DIGEST_METHODS = frozenset({"digest", "hexdigest", "sign"})
#: Identifier suffixes that name secret-bearing byte strings.
_SECRET_SEGMENTS = frozenset({"digest", "digests", "mac", "hmac", "tag", "signature", "sig"})


@register_rule
class StdlibRandomImportRule(Rule):
    """No runtime ``import random`` in trusted / crypto modules."""

    rule_id = "crypto-stdlib-random"
    description = "module-scope import of stdlib random in sgx/ or crypto/"
    rationale = (
        "Key material generated next to `import random` invites a one-line "
        "mistake that swaps the seeded Sha256Prng for the Mersenne Twister. "
        "Trusted code annotates and draws from Sha256Prng; annotation-only "
        "imports go under `if TYPE_CHECKING:` or carry a justified "
        "suppression."
    )
    severity = Severity.ERROR
    scope = ("repro/sgx", "repro/crypto")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.tree.body:
            if node.lineno in module.type_checking:
                continue
            if isinstance(node, ast.Import):
                if any(alias.name.split(".")[0] == "random" for alias in node.names):
                    yield self.finding(
                        module, node,
                        "stdlib random imported at module scope in "
                        "trusted/crypto code; route randomness through "
                        "repro.crypto.prng.Sha256Prng (gate annotation-only "
                        "imports under TYPE_CHECKING)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    module, node,
                    "stdlib random imported at module scope in trusted/"
                    "crypto code; route randomness through Sha256Prng",
                )


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _looks_like_digest(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _DIGEST_FUNCS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _DIGEST_METHODS:
            return True
        return False
    identifier = _terminal_identifier(node)
    if identifier is None:
        return False
    lowered = identifier.lower()
    segments = lowered.split("_")
    return segments[-1] in _SECRET_SEGMENTS or lowered.endswith("digest")


@register_rule
class DigestCompareRule(Rule):
    """Digest/MAC equality must use ``constant_time_equal``."""

    rule_id = "crypto-digest-compare"
    description = "== / != on digest, MAC or signature bytes"
    rationale = (
        "bytes.__eq__ short-circuits on the first mismatch, leaking how "
        "much of a MAC an adversary guessed; the §IV-A handshake proof "
        "checks must use repro.crypto.hashing.constant_time_equal."
    )
    severity = Severity.ERROR
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            # `digest is None` checks and membership tests are fine.
            if any(isinstance(op, ast.Constant) and op.value is None for op in operands):
                continue
            if any(_looks_like_digest(operand) for operand in operands):
                yield self.finding(
                    module, node,
                    "digest/MAC comparison with ==; use "
                    "repro.crypto.hashing.constant_time_equal to avoid a "
                    "timing side channel",
                )


@register_rule
class WeakHashRule(Rule):
    """No MD5 / SHA-1 anywhere."""

    rule_id = "crypto-weak-hash"
    description = "use of a broken hash (md5, sha1)"
    rationale = (
        "Measurements, samplers and the handshake all assume collision "
        "resistance; MD5 and SHA-1 provide neither.  SHA-256 is the "
        "project-wide hash (repro.crypto.hashing)."
    )
    severity = Severity.ERROR
    scope = ()  # everywhere, including tests

    _WEAK = frozenset({"md5", "sha1"})

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        hashlib_aliases = module.import_aliases("hashlib")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "hashlib":
                weak = [a.name for a in node.names if a.name in self._WEAK]
                if weak:
                    yield self.finding(
                        module, node,
                        f"from hashlib import {', '.join(weak)}: broken "
                        f"hash; use sha256",
                    )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in hashlib_aliases
            ):
                if func.attr in self._WEAK:
                    yield self.finding(
                        module, node,
                        f"hashlib.{func.attr}() is collision-broken; use sha256",
                    )
                elif (
                    func.attr == "new"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and str(node.args[0].value).lower() in self._WEAK
                ):
                    yield self.finding(
                        module, node,
                        f"hashlib.new({node.args[0].value!r}) selects a "
                        f"broken hash; use sha256",
                    )
