"""Sim-purity rules.

Protocol hot paths run millions of times per experiment; a stray ``print``
or file handle in them wrecks throughput, interleaves nondeterministically
under future sharded/async engines (ROADMAP), and couples protocol logic to
the host environment.  All I/O belongs in the CLI, ``repro.experiments`` and
``repro.analysis`` layers.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.core import Finding, ModuleInfo, Rule, Severity, register_rule

__all__ = ["PrintRule", "IoRule"]

#: Packages that constitute the pure simulation core.
PURE_SCOPE: Tuple[str, ...] = (
    "repro/sim",
    "repro/brahms",
    "repro/gossip",
    "repro/core",
    "repro/adversary",
    "repro/sgx",
    "repro/crypto",
)

_BANNED_MODULES = {
    "socket": "network I/O",
    "subprocess": "process spawning",
    "urllib": "network I/O",
    "http": "network I/O",
    "requests": "network I/O",
    "asyncio": "event-loop scheduling (belongs in the engine layer)",
}


@register_rule
class PrintRule(Rule):
    """No ``print`` in the simulation core."""

    rule_id = "purity-print"
    description = "print() inside a protocol hot path"
    rationale = (
        "Output from protocol code interleaves nondeterministically once "
        "the engine shards; reporting belongs to repro.experiments / "
        "repro.analysis / the CLI."
    )
    severity = Severity.WARNING
    scope = PURE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module, node,
                    "print() in protocol code; return data and let the "
                    "experiments/analysis layer report it",
                )


@register_rule
class IoRule(Rule):
    """No file/network/process I/O in the simulation core."""

    rule_id = "purity-io"
    description = "file/network/process I/O inside a protocol hot path"
    rationale = (
        "The simulation core must be a pure function of (config, seed); "
        "I/O introduces environment dependence and latency the cycle "
        "accountant cannot model."
    )
    severity = Severity.ERROR
    scope = PURE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "open":
                    yield self.finding(
                        module, node,
                        "open() in protocol code; persistence belongs to "
                        "the experiments layer",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.finding(
                            module, node,
                            f"import {alias.name}: {_BANNED_MODULES[root]} "
                            f"is off-limits in the simulation core",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        module, node,
                        f"from {node.module} import ...: "
                        f"{_BANNED_MODULES[root]} is off-limits in the "
                        f"simulation core",
                    )
