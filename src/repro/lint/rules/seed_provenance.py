"""Seed provenance: unseeded entropy must never reach protocol state.

The paper's claims are statistical over *seeded* runs; every random draw in
the protocol core must descend from the experiment seed through
``derive_seed``/``Sha256Prng``.  The per-file determinism rules catch
direct calls (``random.random()``, ``time.time()``) — this flow family
catches the laundered versions: a helper that returns ``random.Random()``
(no seed) which a protocol class then stores as ``self.rng``, or wall-clock
time flowing into ``derive_seed`` so the "deterministic" seed differs every
run.

Sources
    ``random.Random()`` / ``numpy.random.default_rng()`` with no seed
    argument, ``random.SystemRandom(...)``; ``time.time``/``time_ns``/
    ``perf_counter``/``monotonic``; ``os.urandom``, ``uuid.uuid4`` and the
    ``secrets`` module.

Sinks
    Assignments to protocol-object attributes (``self.x = ...`` inside the
    protocol packages), seeding calls (``derive_seed``, ``Sha256Prng``,
    ``.seed(...)``/``.spawn(...)``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.lint.analysis.model import FunctionModel, ModuleModel, ProjectModel
from repro.lint.core import Severity, register_rule
from repro.lint.rules._flow import BindingAwarePolicy, FlowRule

__all__ = ["UnseededEntropyFlowRule"]

#: Same packages the per-file determinism rules protect.
PROTOCOL_SCOPE: Tuple[str, ...] = (
    "repro/sim",
    "repro/brahms",
    "repro/gossip",
    "repro/core",
    "repro/adversary",
)

_UNSEEDED_CTORS = frozenset({"random.Random", "numpy.random.default_rng"})
_ALWAYS_UNSEEDED = frozenset({"random.SystemRandom"})
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow",
})
_OS_ENTROPY_PREFIXES = ("os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.")

_SEED_DERIVATION = frozenset({
    "repro.crypto.prng.derive_seed", "repro.crypto.prng.Sha256Prng",
})


class _SeedProvenancePolicy(BindingAwarePolicy):
    def _entropy_label(self, call: tuple, module: ModuleModel) -> Optional[str]:
        dotted = self.dotted(module, call)
        if dotted is None:
            return None
        if dotted in _ALWAYS_UNSEEDED:
            return "os-entropy"
        if dotted in _UNSEEDED_CTORS and not call[2] and not any(
            name in ("seed", "x") for name, _value in call[3]
        ):
            return "unseeded-rng"
        if dotted in _WALL_CLOCK:
            return "wall-clock-entropy"
        if dotted.startswith(_OS_ENTROPY_PREFIXES):
            return "os-entropy"
        return None

    def call_result_sources(self, call: tuple, targets: Sequence[str],
                            constructed: Optional[str], fn: FunctionModel,
                            module: ModuleModel) -> Set[str]:
        label = self._entropy_label(call, module)
        return {label} if label is not None else set()

    def sinks_for_call(self, call, targets, constructed, fn, module):
        sinks: List = []
        dotted = self.dotted(module, call)
        if constructed in _SEED_DERIVATION or dotted in _SEED_DERIVATION:
            sinks.append(("seed derivation", None))
        func = call[1]
        if func[0] == "attr" and func[2] in ("seed", "spawn"):
            sinks.append((f"a PRNG .{func[2]}() call", None))
        return sinks

    def sink_for_store(self, base: tuple, attr: str, fn: FunctionModel,
                       module: ModuleModel) -> Optional[str]:
        if base != ("name", "self"):
            return None
        for prefix in PROTOCOL_SCOPE:
            if module.scope_path.startswith(prefix.rstrip("/") + "/") or \
                    module.scope_path == prefix:
                return f"protocol state (self.{attr})"
        return None


@register_rule
class UnseededEntropyFlowRule(FlowRule):
    """Entropy outside the seed chain flowing into protocol state."""

    rule_id = "flow-unseeded-entropy"
    description = "unseeded/ambient entropy flows into protocol state or seeding"
    rationale = (
        "Every protocol random draw must derive from the experiment seed; "
        "an unseeded RNG or wall-clock value laundered through a helper "
        "silently breaks run-for-run reproducibility."
    )
    severity = Severity.ERROR
    scope = PROTOCOL_SCOPE + ("repro/crypto", "repro/experiments", "repro/sgx")

    def make_policy(self, project: ProjectModel):
        return _SeedProvenancePolicy(project)
