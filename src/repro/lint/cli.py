"""``python -m repro.lint`` — run the invariant checks from the shell.

Exit codes: 0 = clean, 1 = findings at or above ``--fail-on`` severity,
2 = usage error.
"""
# lint: disable-file=purity-print -- this is the CLI entry point: printing
# reports/usage errors to the terminal is its entire purpose, like
# snapshot's __main__.

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import dataclasses

from repro.lint.config import LintConfig, load_config
from repro.lint.core import LintRunner, Severity, registered_rules
from repro.lint.reporter import (
    apply_baseline,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based invariant checks for the RAPTEE reproduction",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.repro-lint].paths)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", dest="format_alias", choices=("text", "json", "sarif"),
        default=None,
        help="alias for --format",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse/lint files with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash analysis cache for this run",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="analysis cache directory (default: [tool.repro-lint].cache-dir "
             "or .repro-lint-cache next to pyproject.toml)",
    )
    parser.add_argument(
        "--graph", nargs="?", const="", default=None, metavar="PREFIX",
        help="print the project call graph (optionally filtered to "
             "qualnames starting with PREFIX) and exit",
    )
    parser.add_argument(
        "--config", default=None,
        help="pyproject.toml to read [tool.repro-lint] from (default: search upward)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--disable", default=None, metavar="RULES",
        help="comma-separated rule ids to skip (adds to config)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="ignore findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="record current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--fail-on", choices=("note", "warning", "error"), default="warning",
        help="minimum severity that causes a non-zero exit (default: warning)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in registered_rules():
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        lines.append(
            f"{rule.rule_id:26s} {rule.severity.name.lower():8s} "
            f"[{scope}] {rule.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    config = load_config(args.config)

    # A typo'd rule id or path must not silently disable the gate: CI would
    # go green with nothing linted.
    known_rules = {rule.rule_id for rule in registered_rules()}
    requested = []
    for option in (args.select, args.disable):
        if option:
            requested.extend(r.strip() for r in option.split(",") if r.strip())
    unknown = sorted(set(requested) - known_rules)
    if unknown:
        print(
            f"repro.lint: unknown rule id(s): {', '.join(unknown)} "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2

    if args.select:
        config = dataclasses.replace(
            config,
            enable_only=tuple(r.strip() for r in args.select.split(",") if r.strip()),
        )
    if args.disable:
        config = dataclasses.replace(
            config,
            disable=config.disable
            + tuple(r.strip() for r in args.disable.split(",") if r.strip()),
        )

    paths = args.paths or list(config.paths)
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(
            f"repro.lint: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    cache = None
    if not args.no_cache:
        from repro.lint.analysis.cache import AnalysisCache

        cache = AnalysisCache(config.resolved_cache_dir(args.cache_dir))

    runner = LintRunner(config=config, cache=cache, jobs=args.jobs)

    if args.graph is not None:
        from repro.lint.analysis.callgraph import CallGraph

        project = runner.build_project(paths)
        print(CallGraph.for_project(project).dump(args.graph))
        return 0

    findings = runner.lint_paths(paths)

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(f"repro.lint: wrote baseline with {len(findings)} finding(s) "
              f"to {args.write_baseline}")
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"repro.lint: cannot read baseline {args.baseline}: {error}",
                  file=sys.stderr)
            return 2
        findings = apply_baseline(findings, baseline)

    report_format = args.format_alias or args.format
    if report_format == "json":
        print(render_json(findings))
    elif report_format == "sarif":
        print(render_sarif(findings, rules=runner.rules))
    else:
        print(render_text(findings))

    threshold = Severity.from_name(args.fail_on)
    return 1 if any(f.severity >= threshold for f in findings) else 0


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    sys.exit(main())
