"""Configuration for :mod:`repro.lint`, read from ``[tool.repro-lint]``.

The table in ``pyproject.toml`` supports::

    [tool.repro-lint]
    paths = ["src", "tests"]      # default roots when the CLI gets none
    disable = ["rule-id"]         # rules switched off project-wide
    exclude = ["repro/vendored"]  # scope-path prefixes never linted

    [tool.repro-lint.scopes]
    "purity-print" = ["repro/sim", "repro/gossip"]  # override a rule's scope

Python 3.11+ parses the file with :mod:`tomllib`; on older interpreters a
minimal fallback parser handles exactly the subset above (string arrays and
strings) so the linter stays dependency-free.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LintConfig", "load_config", "find_pyproject"]

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on < 3.11
    tomllib = None


@dataclass
class LintConfig:
    """Resolved linter configuration."""

    paths: Tuple[str, ...] = ("src",)
    disable: Tuple[str, ...] = ()
    enable_only: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    scopes: Dict[str, List[str]] = field(default_factory=dict)
    #: Analysis-cache directory ("cache-dir" key); relative values resolve
    #: against the pyproject's directory, recorded in ``root``.
    cache_dir: Optional[str] = None
    root: Optional[str] = None

    def resolved_cache_dir(self, override: Optional[str] = None) -> str:
        """Absolute cache directory, preferring ``override`` (the CLI flag)."""
        from repro.lint.analysis.cache import DEFAULT_CACHE_DIR

        chosen = override or self.cache_dir or DEFAULT_CACHE_DIR
        if os.path.isabs(chosen):
            return chosen
        return os.path.join(self.root or os.getcwd(), chosen)

    def rule_enabled(self, rule_id: str) -> bool:
        if self.enable_only:
            return rule_id in self.enable_only
        return rule_id not in self.disable

    def scope_override(self, rule_id: str) -> Optional[List[str]]:
        return self.scopes.get(rule_id)

    def excluded(self, scope_path: str) -> bool:
        return any(
            scope_path == prefix or scope_path.startswith(prefix.rstrip("/") + "/")
            for prefix in self.exclude
        )


def find_pyproject(start: Optional[str] = None) -> Optional[str]:
    """Walk upward from ``start`` (default: cwd) looking for pyproject.toml."""
    directory = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_config(pyproject_path: Optional[str] = None) -> LintConfig:
    """Load ``[tool.repro-lint]``; missing file or table yields defaults."""
    path = pyproject_path or find_pyproject()
    if path is None or not os.path.isfile(path):
        return LintConfig()
    with open(path, "rb") as handle:
        raw = handle.read()
    if tomllib is not None:
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except tomllib.TOMLDecodeError:
            return LintConfig()
        table = document.get("tool", {}).get("repro-lint", {})
    else:  # pragma: no cover - exercised only on < 3.11
        table = _parse_minimal_toml_table(raw.decode("utf-8"))
    scopes_table = table.get("scopes", {})
    cache_dir = table.get("cache-dir")
    return LintConfig(
        paths=tuple(table.get("paths", ("src",))),
        disable=tuple(table.get("disable", ())),
        enable_only=tuple(table.get("enable", ())),
        exclude=tuple(table.get("exclude", ())),
        scopes={str(key): list(value) for key, value in scopes_table.items()},
        cache_dir=str(cache_dir) if isinstance(cache_dir, str) else None,
        root=os.path.dirname(os.path.abspath(path)),
    )


_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_VALUE_RE = re.compile(r"^(?P<key>[\w\-\"']+)\s*=\s*(?P<value>.+)$")


def _parse_minimal_toml_table(text: str) -> Dict[str, object]:
    """Tiny TOML subset parser for ``[tool.repro-lint]`` on Python < 3.11.

    Handles string scalars and single-line arrays of strings, which is all
    the lint table uses.  Anything unrecognised is ignored.
    """
    table: Dict[str, object] = {}
    current: Optional[Dict[str, object]] = None
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        section = _SECTION_RE.match(stripped)
        if section:
            name = section.group("name").strip()
            if name == "tool.repro-lint":
                current = table
            elif name == "tool.repro-lint.scopes":
                scopes: Dict[str, object] = {}
                table["scopes"] = scopes
                current = scopes
            else:
                current = None
            continue
        if current is None:
            continue
        pair = _KEY_VALUE_RE.match(stripped)
        if not pair:
            continue
        key = pair.group("key").strip("\"'")
        value = pair.group("value").split("#")[0].strip()
        current[key] = _parse_value(value)
    return table


def _parse_value(value: str) -> object:
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [item.strip().strip("\"'") for item in inner.split(",") if item.strip()]
    return value.strip("\"'")
