"""Whole-program analysis for :mod:`repro.lint`.

The per-file AST rules catch what a single parse tree can show; the
invariants that actually broke in practice (PR 5's un-picklable closure,
mutable state silently dropped across a snapshot seam) span files.  This
package builds a *project model* over every linted source file and gives
rules three whole-program facts to reason with:

1. a **symbol table** — every module's imports, top-level functions,
   classes, methods and ``__init__``-assigned attributes
   (:mod:`repro.lint.analysis.model`);
2. an **import graph** and a best-effort **call graph** resolving call
   sites to project functions along imports, ``self.`` dispatch and
   constructor results (:mod:`repro.lint.analysis.callgraph`);
3. an **intraprocedural dataflow core with interprocedural taint
   propagation** — rules declare sources/sinks/sanitizers and the engine
   pushes labels through assignments, returns and call edges using
   per-function summaries run to a fixpoint
   (:mod:`repro.lint.analysis.dataflow`,
   :mod:`repro.lint.analysis.taint`).

Everything the model records is picklable and derived from source text
alone, so :mod:`repro.lint.analysis.cache` can key per-file results on a
content hash: warm whole-program runs never re-parse unchanged files.
"""

from repro.lint.analysis.cache import AnalysisCache
from repro.lint.analysis.callgraph import CallGraph
from repro.lint.analysis.dataflow import FunctionSummary, TaintPolicy, evaluate_bindings
from repro.lint.analysis.model import (
    ClassModel,
    FunctionModel,
    ModuleModel,
    ProjectModel,
    build_module_model,
    project_from_sources,
)
from repro.lint.analysis.taint import SinkHit, TaintAnalysis

__all__ = [
    "AnalysisCache",
    "CallGraph",
    "ClassModel",
    "FunctionModel",
    "FunctionSummary",
    "ModuleModel",
    "ProjectModel",
    "SinkHit",
    "TaintAnalysis",
    "TaintPolicy",
    "build_module_model",
    "evaluate_bindings",
    "project_from_sources",
]
