"""The project model: modules, symbols and a picklable mini-IR.

Whole-program rules cannot carry raw ``ast`` trees around — trees are
expensive to pickle (which the analysis cache and ``--jobs`` workers both
need) and far more detailed than flow rules require.  Lowering happens once
per file: every function body becomes a flat, ordered list of *events* over
*value descriptors*, and every class records the facts the semantic rules
ask about (``__init__``-assigned attributes and their mutability,
``__getstate__`` / ``__setstate__`` behaviour).

Value descriptors are nested tuples (hashable, picklable, cheap):

=====================  ====================================================
``("const", kind)``    literal of ``kind`` ("none", "bool", "num", ...)
``("str", text)``      string literal (truncated to 120 chars)
``("name", ident)``    a name read
``("attr", base, a)``  attribute read ``base.a``
``("call", f, args, kwargs)``  call; ``kwargs`` is ``((name|None, value), ...)``
``("lambda", line, col)``      a lambda expression
``("mut", kind, elems)``       container literal/comprehension; ``kind`` in
                               list/dict/set/tuple/comp
``("elem", base)``     an element drawn from iterable ``base``
``("sub", base)``      subscript read ``base[...]``
``("many", values)``   merge of several operands (binop, ternary, f-string)
``("unknown",)``       anything deeper than the lowering cares about
=====================  ====================================================

Events (per function, in source order; nested ``def`` bodies get their own
:class:`FunctionModel` and are *not* inlined):

* ``("assign", name, value, lineno)``
* ``("sattr", base_value, attr, value, lineno, col)`` — attribute store
* ``("call", call_value, lineno, col)`` — every call expression
* ``("ret", value, lineno)``
* ``("def", name, nested_index)`` — a local ``def`` binding ``name``
"""

from __future__ import annotations

import ast
import builtins as _builtins
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AttrInit",
    "ClassModel",
    "FunctionModel",
    "GetstateInfo",
    "ModuleModel",
    "ProjectModel",
    "SetstateInfo",
    "build_module_model",
    "module_name_for",
    "project_from_sources",
]

#: Bump when the lowering or model shape changes: invalidates cached models.
MODEL_VERSION = 1

_MAX_STR = 120
_MAX_DEPTH = 8

_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "Counter", "defaultdict",
     "deque", "OrderedDict"}
)
_BUILTIN_NAMES = frozenset(dir(_builtins))


def module_name_for(scope_path: str) -> str:
    """Dotted module name for a scope path (``repro/sim/engine.py``)."""
    trimmed = scope_path[:-3] if scope_path.endswith(".py") else scope_path
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


# -- expression lowering -----------------------------------------------------


def _lower(node: Optional[ast.AST], depth: int = 0):
    if node is None or depth > _MAX_DEPTH:
        return ("unknown",)
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, str):
            return ("str", value[:_MAX_STR])
        if value is None:
            return ("const", "none")
        if isinstance(value, bool):
            return ("const", "bool")
        if isinstance(value, (int, float, complex)):
            return ("const", "num")
        if isinstance(value, bytes):
            return ("const", "bytes")
        return ("const", "other")
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Attribute):
        return ("attr", _lower(node.value, depth + 1), node.attr)
    if isinstance(node, ast.Call):
        args = tuple(_lower(arg, depth + 1) for arg in node.args)
        kwargs = tuple(
            (kw.arg, _lower(kw.value, depth + 1)) for kw in node.keywords
        )
        return ("call", _lower(node.func, depth + 1), args, kwargs)
    if isinstance(node, ast.Lambda):
        return ("lambda", node.lineno, node.col_offset)
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        kind = type(node).__name__.lower()
        elems = tuple(_lower(e, depth + 1) for e in node.elts[:8])
        return ("mut", kind, elems)
    if isinstance(node, ast.Dict):
        elems = tuple(_lower(v, depth + 1) for v in node.values[:8])
        return ("mut", "dict", elems)
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        parts: List[object] = []
        if isinstance(node, ast.DictComp):
            parts.append(_lower(node.value, depth + 1))
        elif not isinstance(node, ast.GeneratorExp):
            parts.append(_lower(node.elt, depth + 1))
        else:
            parts.append(_lower(node.elt, depth + 1))
        parts.extend(("elem", _lower(g.iter, depth + 1)) for g in node.generators)
        return ("mut", "comp", tuple(parts))
    if isinstance(node, ast.Subscript):
        return ("sub", _lower(node.value, depth + 1))
    if isinstance(node, ast.Starred):
        return _lower(node.value, depth + 1)
    if isinstance(node, ast.BinOp):
        return ("many", (_lower(node.left, depth + 1), _lower(node.right, depth + 1)))
    if isinstance(node, ast.BoolOp):
        return ("many", tuple(_lower(v, depth + 1) for v in node.values[:6]))
    if isinstance(node, ast.IfExp):
        return ("many", (_lower(node.body, depth + 1), _lower(node.orelse, depth + 1)))
    if isinstance(node, ast.JoinedStr):
        parts = tuple(
            _lower(v.value, depth + 1)
            for v in node.values
            if isinstance(v, ast.FormattedValue)
        )
        return ("many", parts) if parts else ("const", "other")
    if isinstance(node, ast.UnaryOp):
        return _lower(node.operand, depth + 1)
    if isinstance(node, ast.Await):
        return _lower(node.value, depth + 1)
    if isinstance(node, ast.NamedExpr):
        return _lower(node.value, depth + 1)
    if isinstance(node, ast.Compare):
        return ("const", "bool")
    return ("unknown",)


# -- data classes ------------------------------------------------------------


@dataclass
class FunctionModel:
    """One function/method/nested def, lowered to events."""

    name: str
    qualname: str
    lineno: int
    col: int
    params: Tuple[str, ...]
    events: Tuple[tuple, ...] = ()
    decorators: Tuple[tuple, ...] = ()
    nested: List["FunctionModel"] = field(default_factory=list)
    is_nested: bool = False
    has_free_vars: bool = False
    class_name: Optional[str] = None
    #: Filled in when the module joins a :class:`ProjectModel`.
    module: Optional["ModuleModel"] = field(default=None, repr=False, compare=False)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def calls(self) -> Iterator[tuple]:
        for event in self.events:
            if event[0] == "call":
                yield event


@dataclass
class AttrInit:
    """One ``self.x = ...`` assignment inside ``__init__``."""

    name: str
    lineno: int
    col: int
    mutable: bool
    value: tuple


@dataclass
class GetstateInfo:
    """What ``__getstate__`` does to the instance dict."""

    lineno: int
    returns_dict_copy: bool = False
    dropped: Tuple[str, ...] = ()      # del state["x"] / state.pop("x")
    reset: Tuple[str, ...] = ()        # state["x"] = <literal>  (still present)
    explicit_keys: Optional[Tuple[str, ...]] = None  # literal-dict return


@dataclass
class SetstateInfo:
    """What ``__setstate__`` puts back."""

    lineno: int
    assigned_attrs: Tuple[str, ...] = ()
    updates_dict: bool = False


@dataclass
class ClassModel:
    """One class: methods, init attributes, pickle protocol facts."""

    name: str
    qualname: str
    lineno: int
    bases: Tuple[tuple, ...] = ()
    methods: Dict[str, FunctionModel] = field(default_factory=dict)
    init_attrs: Dict[str, AttrInit] = field(default_factory=dict)
    getstate: Optional[GetstateInfo] = None
    setstate: Optional[SetstateInfo] = None
    has_slots: bool = False
    is_dataclass: bool = False
    is_nested: bool = False


@dataclass
class ModuleModel:
    """One source file's contribution to the project model."""

    module_name: str
    path: str
    scope_path: str
    source_hash: str
    imports: Dict[str, str] = field(default_factory=dict)       # alias -> module
    from_imports: Dict[str, str] = field(default_factory=dict)  # alias -> dotted symbol
    functions: Dict[str, FunctionModel] = field(default_factory=dict)
    classes: Dict[str, ClassModel] = field(default_factory=dict)
    module_names: Set[str] = field(default_factory=set)          # all top-level bindings
    model_version: int = MODEL_VERSION

    def all_functions(self) -> Iterator[FunctionModel]:
        """Every function in the module, methods and nested defs included."""
        stack: List[FunctionModel] = list(self.functions.values())
        for cls in self.classes.values():
            stack.extend(cls.methods.values())
        while stack:
            fn = stack.pop()
            yield fn
            stack.extend(fn.nested)


# -- module lowering ---------------------------------------------------------


class _FunctionLowerer:
    """Lowers one function body into events, collecting nested defs."""

    def __init__(self, qualname_prefix: str, class_name: Optional[str]):
        self.prefix = qualname_prefix
        self.class_name = class_name

    def lower(self, node, is_nested: bool = False) -> FunctionModel:
        params = tuple(
            arg.arg
            for arg in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
        )
        fn = FunctionModel(
            name=node.name,
            qualname=f"{self.prefix}.{node.name}",
            lineno=node.lineno,
            col=node.col_offset,
            params=params,
            decorators=tuple(_lower(d) for d in node.decorator_list),
            is_nested=is_nested,
            class_name=self.class_name,
        )
        events: List[tuple] = []
        assigned: Set[str] = set(params)
        loaded: Set[str] = set()
        for stmt in node.body:
            self._lower_stmt(stmt, fn, events, assigned, loaded)
        fn.events = tuple(events)
        free = loaded - assigned - _BUILTIN_NAMES
        fn.has_free_vars = bool(free) and is_nested
        return fn

    # Every statement contributes its calls (in source order) and, where the
    # dataflow core can use them, assignments/returns.

    def _emit_calls(self, node: ast.AST, events: List[tuple]) -> None:
        for call in _walk_same_scope(node):
            if isinstance(call, ast.Call):
                events.append(("call", _lower(call), call.lineno, call.col_offset))

    def _note_loads(self, node: ast.AST, loaded: Set[str]) -> None:
        for child in _walk_same_scope(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                loaded.add(child.id)

    def _lower_stmt(self, stmt, fn, events, assigned, loaded) -> None:
        self._note_loads(stmt, loaded)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_lowerer = _FunctionLowerer(fn.qualname, None)
            nested = nested_lowerer.lower(stmt, is_nested=True)
            fn.nested.append(nested)
            events.append(("def", stmt.name, len(fn.nested) - 1))
            assigned.add(stmt.name)
            return
        if isinstance(stmt, ast.ClassDef):
            assigned.add(stmt.name)
            events.append(("assign", stmt.name, ("localclass", stmt.name), stmt.lineno))
            return
        self._emit_calls(stmt, events)
        if isinstance(stmt, ast.Assign):
            value = _lower(stmt.value)
            for target in stmt.targets:
                self._lower_target(target, value, stmt, events, assigned)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._lower_target(stmt.target, _lower(stmt.value), stmt, events, assigned)
        elif isinstance(stmt, ast.AugAssign):
            value = ("many", (_lower(stmt.target), _lower(stmt.value)))
            self._lower_target(stmt.target, value, stmt, events, assigned)
        elif isinstance(stmt, ast.Return):
            events.append(("ret", _lower(stmt.value), stmt.lineno))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            element = ("elem", _lower(stmt.iter))
            self._lower_target(stmt.target, element, stmt, events, assigned)
            for child in stmt.body + stmt.orelse:
                self._lower_stmt(child, fn, events, assigned, loaded)
            return
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._lower_target(
                        item.optional_vars, _lower(item.context_expr), stmt,
                        events, assigned,
                    )
            for child in stmt.body:
                self._lower_stmt(child, fn, events, assigned, loaded)
            return
        elif isinstance(stmt, ast.If):
            for child in stmt.body + stmt.orelse:
                self._lower_stmt(child, fn, events, assigned, loaded)
            return
        elif isinstance(stmt, (ast.While,)):
            for child in stmt.body + stmt.orelse:
                self._lower_stmt(child, fn, events, assigned, loaded)
            return
        elif isinstance(stmt, ast.Try):
            children = list(stmt.body)
            for handler in stmt.handlers:
                children.extend(handler.body)
            children.extend(stmt.orelse)
            children.extend(stmt.finalbody)
            for child in children:
                self._lower_stmt(child, fn, events, assigned, loaded)
            return

    def _lower_target(self, target, value, stmt, events, assigned) -> None:
        if isinstance(target, ast.Name):
            assigned.add(target.id)
            events.append(("assign", target.id, value, stmt.lineno))
        elif isinstance(target, ast.Attribute):
            events.append(
                ("sattr", _lower(target.value), target.attr, value,
                 stmt.lineno, stmt.col_offset)
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._lower_target(element, ("elem", value), stmt, events, assigned)


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)


# -- pickle-protocol analysis ------------------------------------------------


def _analyze_getstate(node) -> GetstateInfo:
    info = GetstateInfo(lineno=node.lineno)
    dropped: List[str] = []
    reset: List[str] = []
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                key = _subscript_str_key(target)
                if key is not None:
                    dropped.append(key)
        elif isinstance(stmt, ast.Call):
            func = stmt.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and stmt.args
                and isinstance(stmt.args[0], ast.Constant)
                and isinstance(stmt.args[0].value, str)
            ):
                dropped.append(stmt.args[0].value)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                key = _subscript_str_key(target)
                if key is not None:
                    reset.append(key)
        elif isinstance(stmt, ast.Return):
            value = stmt.value
            if isinstance(value, ast.Dict):
                keys = []
                literal = True
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.append(key.value)
                    else:
                        literal = False
                if literal:
                    info.explicit_keys = tuple(keys)
            else:
                for sub in ast.walk(value) if value is not None else ():
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr == "__dict__"
                    ) or (
                        isinstance(sub, ast.Name) and sub.id == "state"
                    ):
                        info.returns_dict_copy = True
                        break
    info.dropped = tuple(dict.fromkeys(dropped))
    info.reset = tuple(dict.fromkeys(reset))
    return info


def _subscript_str_key(node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Subscript):
        return None
    index = node.slice
    if isinstance(index, ast.Constant) and isinstance(index.value, str):
        return index.value
    return None


def _analyze_setstate(node) -> SetstateInfo:
    info = SetstateInfo(lineno=node.lineno)
    attrs: List[str] = []
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.append(target.attr)
        elif isinstance(stmt, ast.Call):
            func = stmt.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "update"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "__dict__"
            ):
                info.updates_dict = True
    info.assigned_attrs = tuple(dict.fromkeys(attrs))
    return info


def _mutable_value(value: tuple) -> bool:
    kind = value[0]
    if kind == "mut":
        return value[1] in ("list", "dict", "set", "comp")
    if kind == "call":
        func = value[1]
        if func[0] == "name" and func[1] in _MUTABLE_CTORS:
            return True
        if func[0] == "attr" and func[2] in _MUTABLE_CTORS:
            return True
    return False


# -- class / module builders -------------------------------------------------


def _build_class(node: ast.ClassDef, module_name: str,
                 nested: bool = False) -> ClassModel:
    cls = ClassModel(
        name=node.name,
        qualname=f"{module_name}.{node.name}",
        lineno=node.lineno,
        bases=tuple(_lower(base) for base in node.bases),
        is_nested=nested,
    )
    for decorator in node.decorator_list:
        lowered = _lower(decorator)
        flat = lowered[1] if lowered[0] == "call" else lowered
        if (flat[0] == "name" and flat[1] == "dataclass") or (
            flat[0] == "attr" and flat[2] == "dataclass"
        ):
            cls.is_dataclass = True
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lowerer = _FunctionLowerer(cls.qualname, node.name)
            method = lowerer.lower(stmt)
            cls.methods[stmt.name] = method
            if stmt.name == "__getstate__":
                cls.getstate = _analyze_getstate(stmt)
            elif stmt.name == "__setstate__":
                cls.setstate = _analyze_setstate(stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    cls.has_slots = True
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id == "__slots__":
                cls.has_slots = True
            elif cls.is_dataclass:
                # Dataclass fields are init attributes in all but syntax.
                value = _lower(stmt.value) if stmt.value is not None else ("unknown",)
                cls.init_attrs[stmt.target.id] = AttrInit(
                    name=stmt.target.id,
                    lineno=stmt.lineno,
                    col=stmt.col_offset,
                    mutable=_mutable_value(value),
                    value=value,
                )
    init = cls.methods.get("__init__")
    if init is not None:
        for event in init.events:
            if event[0] != "sattr":
                continue
            _tag, base, attr, value, lineno, col = event
            if base == ("name", "self") and attr not in cls.init_attrs:
                cls.init_attrs[attr] = AttrInit(
                    name=attr, lineno=lineno, col=col,
                    mutable=_mutable_value(value), value=value,
                )
    return cls


def build_module_model(source: str, path: str, scope_path: str,
                       tree: Optional[ast.Module] = None) -> ModuleModel:
    """Lower one parsed file into its :class:`ModuleModel`."""
    if tree is None:
        tree = ast.parse(source, filename=path)
    module_name = module_name_for(scope_path)
    model = ModuleModel(
        module_name=module_name,
        path=path,
        scope_path=scope_path,
        source_hash=hashlib.sha256(source.encode("utf-8")).hexdigest(),
    )
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    for node in tree.body:
        _collect_top_level(node, model, module_name, package)
    return model


def _collect_top_level(node, model: ModuleModel, module_name: str,
                       package: str) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            model.imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
            if alias.asname is None and "." in alias.name:
                # `import repro.sgx.enclave` binds `repro`; remember the full
                # dotted path too so attribute chains resolve.
                model.imports.setdefault(alias.name, alias.name)
            model.module_names.add(bound)
    elif isinstance(node, ast.ImportFrom):
        base = node.module or ""
        if node.level:
            # Relative import: resolve against this module's package.
            parts = module_name.split(".")
            anchor = parts[: len(parts) - node.level] if len(parts) >= node.level else []
            base = ".".join(anchor + ([base] if base else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            model.from_imports[bound] = f"{base}.{alias.name}" if base else alias.name
            model.module_names.add(bound)
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        lowerer = _FunctionLowerer(module_name, None)
        model.functions[node.name] = lowerer.lower(node)
        model.module_names.add(node.name)
    elif isinstance(node, ast.ClassDef):
        model.classes[node.name] = _build_class(node, module_name)
        model.module_names.add(node.name)
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                model.module_names.add(target.id)
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        model.module_names.add(node.target.id)
    elif isinstance(node, (ast.If, ast.Try)):
        bodies = []
        if isinstance(node, ast.If):
            bodies = node.body + node.orelse
        else:
            bodies = list(node.body)
            for handler in node.handlers:
                bodies.extend(handler.body)
            bodies += node.orelse + node.finalbody
        for child in bodies:
            _collect_top_level(child, model, module_name, package)


# -- the whole-program model -------------------------------------------------


class ProjectModel:
    """Symbol table + import graph over a set of :class:`ModuleModel`."""

    def __init__(self, modules: Sequence[ModuleModel]):
        self.modules: Dict[str, ModuleModel] = {}
        for module in modules:
            self.modules[module.module_name] = module
            for fn in module.all_functions():
                fn.module = module
        self.by_scope_path: Dict[str, ModuleModel] = {
            module.scope_path: module for module in self.modules.values()
        }
        self._functions: Dict[str, FunctionModel] = {}
        self._classes: Dict[str, ClassModel] = {}
        for module in self.modules.values():
            for fn in module.all_functions():
                self._functions[fn.qualname] = fn
            for cls in module.classes.values():
                self._classes[cls.qualname] = cls

    # -- lookups -----------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionModel]:
        return self._functions.get(qualname)

    def class_model(self, qualname: str) -> Optional[ClassModel]:
        return self._classes.get(qualname)

    def all_functions(self) -> Iterator[FunctionModel]:
        return iter(self._functions.values())

    def all_classes(self) -> Iterator[ClassModel]:
        return iter(self._classes.values())

    # -- name resolution ----------------------------------------------------

    def resolve_name(self, module: ModuleModel, name: str) -> Optional[str]:
        """Dotted target a bare name refers to in ``module``, if known."""
        if name in module.from_imports:
            return module.from_imports[name]
        if name in module.imports:
            return module.imports[name]
        if name in module.functions or name in module.classes:
            return f"{module.module_name}.{name}"
        if name in _BUILTIN_NAMES and name not in module.module_names:
            return f"builtins.{name}"
        return None

    def resolve_value(self, module: ModuleModel, value: tuple) -> Optional[str]:
        """Best-effort dotted name for a value descriptor."""
        if value[0] == "name":
            return self.resolve_name(module, value[1])
        if value[0] == "attr":
            base = self.resolve_value(module, value[1])
            if base is None:
                return None
            return f"{base}.{value[2]}"
        return None

    def resolve_class(self, module: ModuleModel, value: tuple) -> Optional[ClassModel]:
        dotted = self.resolve_value(module, value)
        if dotted is None:
            return None
        resolved = self._resolve_reexport(dotted)
        return self._classes.get(resolved)

    def _resolve_reexport(self, dotted: str) -> str:
        """Follow one level of ``from x import y`` re-export chains."""
        seen = set()
        current = dotted
        while current not in seen:
            seen.add(current)
            if current in self._functions or current in self._classes:
                return current
            if "." not in current:
                return current
            owner, symbol = current.rsplit(".", 1)
            owner_module = self.modules.get(owner)
            if owner_module is None or symbol not in owner_module.from_imports:
                return current
            current = owner_module.from_imports[symbol]
        return current

    def find_method(self, cls: ClassModel, name: str,
                    _depth: int = 0) -> Optional[FunctionModel]:
        """Method lookup through the recorded base-class chain."""
        if name in cls.methods:
            return cls.methods[name]
        if _depth > 6:
            return None
        module = self.modules.get(cls.qualname.rsplit(".", 1)[0])
        if module is None:
            return None
        for base_value in cls.bases:
            base_cls = self.resolve_class(module, base_value)
            if base_cls is not None:
                found = self.find_method(base_cls, name, _depth + 1)
                if found is not None:
                    return found
        return None

    # -- import graph -------------------------------------------------------

    def import_graph(self) -> Dict[str, Set[str]]:
        """Module -> imported project modules (symbols mapped to their module)."""
        graph: Dict[str, Set[str]] = {}
        for name, module in self.modules.items():
            edges: Set[str] = set()
            for target in module.imports.values():
                edges.update(self._project_module_of(target))
            for target in module.from_imports.values():
                edges.update(self._project_module_of(target))
            graph[name] = edges - {name}
        return graph

    def _project_module_of(self, dotted: str) -> Set[str]:
        if dotted in self.modules:
            return {dotted}
        if "." in dotted:
            owner = dotted.rsplit(".", 1)[0]
            if owner in self.modules:
                return {owner}
        return set()

    def import_closure(self, roots: Sequence[str]) -> Set[str]:
        """Project modules transitively imported from ``roots``."""
        graph = self.import_graph()
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.modules]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.get(current, ()) - seen)
        return seen


def project_from_sources(sources: Dict[str, str]) -> ProjectModel:
    """Build a project model from ``{scope_path: source}`` (test helper)."""
    modules = [
        build_module_model(source, path=scope_path, scope_path=scope_path)
        for scope_path, source in sorted(sources.items())
    ]
    return ProjectModel(modules)
