"""Intraprocedural dataflow core for the flow rules.

One forward pass over a function's lowered events computes, per local name,
(a) the value descriptor it was last bound to (*bindings* — used by the
call graph to type constructor results) and (b) the set of *taint labels*
reaching it.  Labels are either plain strings (a real source, e.g.
``"enclave-group-key"``) or the symbolic ``("param", i)`` marker meaning
"whatever flows into parameter *i*" — the latter is what makes summaries
composable across call edges (:mod:`repro.lint.analysis.taint`).

Rules plug in a :class:`TaintPolicy` naming their sources, sinks and
sanitizers; the engine is family-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.analysis.model import FunctionModel, ModuleModel, ProjectModel

__all__ = [
    "FunctionSummary",
    "SinkHit",
    "TaintPolicy",
    "evaluate_bindings",
    "evaluate_function",
]

#: Builtins through which taint does not meaningfully flow (their result
#: reveals only type/size facts, not the value).
_NON_PROPAGATING_BUILTINS = frozenset(
    {"builtins.len", "builtins.isinstance", "builtins.type", "builtins.bool",
     "builtins.callable", "builtins.issubclass"}
)


def evaluate_bindings(fn: FunctionModel) -> Dict[str, tuple]:
    """Last value descriptor bound to each local name (single forward pass)."""
    bindings: Dict[str, tuple] = {}
    for event in fn.events:
        if event[0] == "assign":
            bindings[event[1]] = event[2]
        elif event[0] == "def":
            nested = fn.nested[event[2]]
            bindings[event[1]] = (
                "localfunc", nested.qualname, nested.has_free_vars, nested.lineno
            )
    return bindings


@dataclass(frozen=True)
class SinkHit:
    """Tainted data reached a sink at a concrete source location."""

    qualname: str
    path: str
    scope_path: str
    lineno: int
    col: int
    sink: str
    labels: FrozenSet[str]
    via: Tuple[str, ...] = ()   # interprocedural call chain, outermost first


#: A sink reachable from a parameter: (sink name, call chain to it).
ParamSink = Tuple[str, Tuple[str, ...]]


@dataclass
class FunctionSummary:
    """What a function does with taint, as seen from its call sites."""

    qualname: str
    returns_sources: FrozenSet[str] = frozenset()
    returns_params: FrozenSet[int] = frozenset()
    param_sinks: Dict[int, Tuple[ParamSink, ...]] = field(default_factory=dict)
    hits: Tuple[SinkHit, ...] = ()

    def core(self):
        """The part callers depend on; the fixpoint iterates until stable."""
        return (
            self.returns_sources,
            self.returns_params,
            tuple(sorted((k, v) for k, v in self.param_sinks.items())),
        )


class TaintPolicy:
    """What a flow rule considers a source, a sink and a sanitizer.

    Subclass and override; every hook defaults to "nothing".  ``call`` values
    are lowered ``("call", func, args, kwargs)`` tuples; ``targets`` are the
    dotted qualnames the call graph resolved them to (possibly empty).
    """

    def value_sources(self, value: tuple, fn: FunctionModel,
                      module: ModuleModel) -> Set[str]:
        """Labels inherent to reading ``value`` (e.g. a secret attribute)."""
        return set()

    def call_result_sources(self, call: tuple, targets: Sequence[str],
                            constructed: Optional[str], fn: FunctionModel,
                            module: ModuleModel) -> Set[str]:
        """Labels born at this call (e.g. ``sealing_key_for(...)``)."""
        return set()

    def param_sources(self, fn: FunctionModel, param: str) -> Set[str]:
        """Labels a parameter carries by convention (rarely needed)."""
        return set()

    def sinks_for_call(self, call: tuple, targets: Sequence[str],
                       constructed: Optional[str], fn: FunctionModel,
                       module: ModuleModel) -> List[Tuple[str, Optional[Sequence[int]]]]:
        """Sinks at this call: ``(sink_name, arg indices or None for all)``.

        Indices address positional args; kwargs are always included when
        indices is None.
        """
        return []

    def sink_for_store(self, base: tuple, attr: str, fn: FunctionModel,
                       module: ModuleModel) -> Optional[str]:
        """Sink name when storing into ``base.attr`` matters (or None)."""
        return None

    def is_sanitizer(self, call: tuple, targets: Sequence[str],
                     fn: FunctionModel, module: ModuleModel) -> bool:
        """True when the call's result must be considered clean."""
        return False

    def propagates_through_unknown_call(self, call: tuple,
                                        targets: Sequence[str]) -> bool:
        """Whether taint flows args -> result for unresolved callees."""
        return True

    def param_sink_applies(self, callee: str, sink: str, call: tuple,
                           fn: FunctionModel, module: ModuleModel) -> bool:
        """Whether a callee's parameter-reachable sink applies at this site.

        Lets a policy model flow-sensitive guards the summary flattened —
        e.g. ``repeat()`` only submits its task to a pool when ``workers``
        is set, so callers without it are fine.
        """
        return True


class _FunctionEvaluator:
    """One pass over one function under one policy + current summaries."""

    def __init__(self, fn: FunctionModel, callgraph, policy: TaintPolicy,
                 summaries: Dict[str, FunctionSummary]):
        self.fn = fn
        self.module = fn.module
        self.callgraph = callgraph
        self.policy = policy
        self.summaries = summaries
        self.bindings = evaluate_bindings(fn)
        self.env: Dict[str, FrozenSet] = {}
        for index, param in enumerate(fn.params):
            labels: Set = {("param", index)}
            labels |= policy.param_sources(fn, param)
            self.env[param] = frozenset(labels)
        self.returns_sources: Set[str] = set()
        self.returns_params: Set[int] = set()
        self.param_sinks: Dict[int, Set[ParamSink]] = {}
        self.hits: List[SinkHit] = []

    # -- label computation ---------------------------------------------------

    def taint(self, value: tuple) -> FrozenSet:
        kind = value[0]
        if kind in ("lambda", "localfunc", "localclass"):
            # Function-valued descriptors carry no data taint, but a policy
            # may consider the object itself a source (picklability rules).
            return frozenset(self.policy.value_sources(value, self.fn, self.module))
        if kind in ("const", "str", "unknown"):
            return frozenset()
        if kind == "name":
            inherent = self.policy.value_sources(value, self.fn, self.module)
            return self.env.get(value[1], frozenset()) | frozenset(inherent)
        if kind == "attr":
            inherent = self.policy.value_sources(value, self.fn, self.module)
            return self.taint(value[1]) | frozenset(inherent)
        if kind in ("sub", "elem"):
            return self.taint(value[1])
        if kind == "many":
            out: FrozenSet = frozenset()
            for child in value[1]:
                out |= self.taint(child)
            return out
        if kind == "mut":
            out = frozenset()
            for child in value[2]:
                out |= self.taint(child)
            return out
        if kind == "call":
            return self._call_result_taint(value)
        return frozenset()

    def _resolve(self, call: tuple):
        return self.callgraph.resolve_call(
            self.module, self.fn, call, self.bindings
        )

    def _arg_taints(self, call: tuple) -> List[FrozenSet]:
        return [self.taint(arg) for arg in call[2]]

    def _summary_for(self, targets: Sequence[str]) -> Optional[FunctionSummary]:
        for target in targets:
            summary = self.summaries.get(target)
            if summary is not None:
                return summary
        return None

    def _call_result_taint(self, call: tuple) -> FrozenSet:
        targets, constructed = self._resolve(call)
        if self.policy.is_sanitizer(call, targets, self.fn, self.module):
            return frozenset()
        labels: Set = set(
            self.policy.call_result_sources(
                call, targets, constructed, self.fn, self.module
            )
        )
        arg_taints = self._arg_taints(call)
        kwarg_taints = [self.taint(v) for _name, v in call[3]]
        summary = self._summary_for(targets)
        if summary is not None:
            labels |= summary.returns_sources
            for index in summary.returns_params:
                if index < len(arg_taints):
                    labels |= arg_taints[index]
        elif targets and all(t in _NON_PROPAGATING_BUILTINS for t in targets):
            pass  # len()/isinstance()-style: result carries no taint
        elif self.policy.propagates_through_unknown_call(call, targets):
            for taint in arg_taints + kwarg_taints:
                labels |= taint
        return frozenset(labels)

    # -- event processing ----------------------------------------------------

    def run(self) -> FunctionSummary:
        for event in self.fn.events:
            kind = event[0]
            if kind == "assign":
                _k, name, value, _line = event
                self.env[name] = self.taint(value)
            elif kind == "sattr":
                self._process_store(event)
            elif kind == "def":
                _k, name, nested_index = event
                nested = self.fn.nested[nested_index]
                descriptor = (
                    "localfunc", nested.qualname, nested.has_free_vars,
                    nested.lineno,
                )
                self.env[name] = frozenset(
                    self.policy.value_sources(descriptor, self.fn, self.module)
                )
            elif kind == "call":
                self._process_call_event(event)
            elif kind == "ret":
                labels = self.taint(event[1])
                for label in labels:
                    if isinstance(label, tuple) and label[0] == "param":
                        self.returns_params.add(label[1])
                    else:
                        self.returns_sources.add(label)
        return FunctionSummary(
            qualname=self.fn.qualname,
            returns_sources=frozenset(self.returns_sources),
            returns_params=frozenset(self.returns_params),
            param_sinks={
                index: tuple(sorted(sinks))
                for index, sinks in self.param_sinks.items()
            },
            hits=tuple(self.hits),
        )

    def _split(self, labels: FrozenSet):
        real = frozenset(l for l in labels if isinstance(l, str))
        params = [l[1] for l in labels if isinstance(l, tuple) and l[0] == "param"]
        return real, params

    def _record(self, sink: str, labels: FrozenSet, lineno: int, col: int,
                via: Tuple[str, ...] = ()) -> None:
        real, params = self._split(labels)
        if real:
            self.hits.append(
                SinkHit(
                    qualname=self.fn.qualname,
                    path=self.module.path,
                    scope_path=self.module.scope_path,
                    lineno=lineno,
                    col=col,
                    sink=sink,
                    labels=real,
                    via=via,
                )
            )
        for index in params:
            self.param_sinks.setdefault(index, set()).add((sink, via))

    def _process_store(self, event: tuple) -> None:
        _tag, base, attr, value, lineno, col = event
        sink = self.policy.sink_for_store(base, attr, self.fn, self.module)
        if sink is None:
            return
        self._record(sink, self.taint(value), lineno, col)

    def _process_call_event(self, event: tuple) -> None:
        _tag, call, lineno, col = event
        targets, constructed = self._resolve(call)
        arg_taints = self._arg_taints(call)
        kwarg_taints = [(name, self.taint(v)) for name, v in call[3]]

        # Direct sinks declared by the policy at this call.
        for sink, indices in self.policy.sinks_for_call(
            call, targets, constructed, self.fn, self.module
        ):
            if indices is None:
                combined: FrozenSet = frozenset()
                for taint in arg_taints:
                    combined |= taint
                for _name, taint in kwarg_taints:
                    combined |= taint
                self._record(sink, combined, lineno, col)
            else:
                for index in indices:
                    if index < len(arg_taints):
                        self._record(sink, arg_taints[index], lineno, col)

        # Sinks inside resolved callees, reached through their parameters.
        summary = self._summary_for(targets)
        if summary is not None:
            for index, sinks in summary.param_sinks.items():
                if index >= len(arg_taints):
                    continue
                for sink, via in sinks:
                    if not self.policy.param_sink_applies(
                        summary.qualname, sink, call, self.fn, self.module
                    ):
                        continue
                    self._record(
                        sink, arg_taints[index], lineno, col,
                        via=(summary.qualname,) + via,
                    )


def evaluate_function(fn: FunctionModel, callgraph, policy: TaintPolicy,
                      summaries: Dict[str, FunctionSummary]) -> FunctionSummary:
    """One evaluation of ``fn`` under the current summary table."""
    if fn.module is None:
        return FunctionSummary(qualname=fn.qualname)
    return _FunctionEvaluator(fn, callgraph, policy, summaries).run()
