"""Content-hash-keyed per-file analysis cache.

Whole-program runs parse every file under ``src`` and ``tests``; almost
none of them change between two invocations.  The cache stores, per file,
a pickled record keyed on the SHA-256 of the source text (plus the model
version and the rule-battery signature), holding

* the lowered :class:`~repro.lint.analysis.model.ModuleModel`,
* the per-file rule findings (pre-baseline, post-suppression),
* the parsed suppression table (whole-program findings are filtered
  against it without re-reading the source).

A warm run therefore does no ``ast.parse`` at all for unchanged files —
that is what keeps ``repro lint`` over the full tree under a few seconds.
Corrupt or stale entries are treated as misses, never as errors: the cache
can always be deleted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Optional

__all__ = ["AnalysisCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-lint-cache"

#: Bump to invalidate every existing cache entry (format change).
_CACHE_FORMAT = 2


class AnalysisCache:
    """A directory of pickled per-file analysis records."""

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(source: str, battery_signature: str) -> str:
        hasher = hashlib.sha256()
        hasher.update(f"format={_CACHE_FORMAT};".encode())
        hasher.update(battery_signature.encode())
        hasher.update(b";")
        hasher.update(source.encode("utf-8"))
        return hasher.hexdigest()

    def _path_for(self, key: str) -> str:
        # Two-level fan-out keeps the directory listing manageable.
        return os.path.join(self.directory, key[:2], key + ".pickle")

    def get(self, key: str) -> Optional[Any]:
        path = self._path_for(key)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Any) -> None:
        path = self._path_for(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            # Write-then-rename: a concurrent reader never sees a torn file.
            fd, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only checkout or full disk degrades to cold runs.
            pass

    def stats(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es)"
