"""Interprocedural taint: function summaries run to a fixpoint.

Each pass re-evaluates every function under the current summary table
(:func:`repro.lint.analysis.dataflow.evaluate_function`); a function's
summary changes when a callee's summary taught it something new — a
tainted return, or a parameter that reaches a sink deeper in the call
graph.  Summaries only grow, and the label/parameter sets are finite, so
the iteration terminates; the bound is a safety net, not the common case
(this codebase converges in 2–3 passes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lint.analysis.dataflow import (
    FunctionSummary,
    SinkHit,
    TaintPolicy,
    evaluate_function,
)
from repro.lint.analysis.model import ProjectModel

__all__ = ["TaintAnalysis", "SinkHit"]

_MAX_PASSES = 8


class TaintAnalysis:
    """Run one policy over the whole project and collect sink hits."""

    def __init__(self, project: ProjectModel, callgraph, policy: TaintPolicy):
        self.project = project
        self.callgraph = callgraph
        self.policy = policy
        self.summaries: Dict[str, FunctionSummary] = {}
        self.passes = 0

    def run(self) -> List[SinkHit]:
        functions = sorted(self.project.all_functions(), key=lambda f: f.qualname)
        for _ in range(_MAX_PASSES):
            self.passes += 1
            changed = False
            for fn in functions:
                new = evaluate_function(fn, self.callgraph, self.policy, self.summaries)
                old = self.summaries.get(fn.qualname)
                if old is None or old.core() != new.core():
                    changed = True
                self.summaries[fn.qualname] = new
            if not changed:
                break
        seen = set()
        hits: List[SinkHit] = []
        for fn in functions:
            summary = self.summaries.get(fn.qualname)
            if summary is None:
                continue
            for hit in summary.hits:
                key = (hit.path, hit.lineno, hit.col, hit.sink, hit.labels)
                if key not in seen:
                    seen.add(key)
                    hits.append(hit)
        hits.sort(key=lambda h: (h.path, h.lineno, h.col, h.sink))
        return hits

    def summary(self, qualname: str) -> Optional[FunctionSummary]:
        return self.summaries.get(qualname)
