"""Best-effort call graph over the project model.

Call sites are resolved through the cases that matter for this codebase:

* bare names — local defs, ``from x import f`` and ``import x`` aliases,
  one level of package re-exports (``from repro.snapshot import save``);
* ``self.method(...)`` — same class, then the recorded base-class chain;
* ``module.func(...)`` / ``package.module.func(...)`` attribute chains;
* constructor calls — resolving to a class adds an edge to ``__init__``;
* ``obj.method(...)`` where ``obj`` is a local name bound to a constructor
  call earlier in the same function (the dataflow bindings pass).

Unresolved calls are kept with their terminal attribute name so flow rules
can still apply name heuristics to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.analysis.dataflow import evaluate_bindings
from repro.lint.analysis.model import (
    ClassModel,
    FunctionModel,
    ModuleModel,
    ProjectModel,
)

__all__ = ["CallGraph", "ResolvedCall"]


@dataclass
class ResolvedCall:
    """One call site inside ``caller`` with its resolution."""

    caller: FunctionModel
    call: tuple              # ("call", func_value, args, kwargs)
    lineno: int
    col: int
    targets: Tuple[str, ...] = ()       # resolved dotted names (may be empty)
    constructed: Optional[str] = None   # class qualname when this is C(...)

    @property
    def terminal_name(self) -> Optional[str]:
        """The last identifier of the callee (``foo`` in ``a.b.foo(...)``)."""
        func = self.call[1]
        if func[0] == "name":
            return func[1]
        if func[0] == "attr":
            return func[2]
        return None


class CallGraph:
    """Resolved call edges plus per-function call-site lists."""

    @classmethod
    def for_project(cls, project: ProjectModel) -> "CallGraph":
        """Build once per project; every flow rule shares the same graph."""
        graph = getattr(project, "_shared_callgraph", None)
        if graph is None:
            graph = cls(project)
            project._shared_callgraph = graph
        return graph

    def __init__(self, project: ProjectModel):
        self.project = project
        self.sites: Dict[str, List[ResolvedCall]] = {}
        self._callees: Dict[str, Set[str]] = {}
        self._callers: Dict[str, Set[str]] = {}
        for fn in project.all_functions():
            self.sites[fn.qualname] = list(self._resolve_function(fn))
        for qualname, calls in self.sites.items():
            for call in calls:
                for target in call.targets:
                    self._callees.setdefault(qualname, set()).add(target)
                    self._callers.setdefault(target, set()).add(qualname)

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> Set[str]:
        return self._callees.get(qualname, set())

    def callers(self, qualname: str) -> Set[str]:
        return self._callers.get(qualname, set())

    def calls_in(self, fn: FunctionModel) -> List[ResolvedCall]:
        return self.sites.get(fn.qualname, [])

    def all_sites(self) -> Iterator[ResolvedCall]:
        for calls in self.sites.values():
            for call in calls:
                yield call

    # -- resolution ---------------------------------------------------------

    def _resolve_function(self, fn: FunctionModel) -> Iterator[ResolvedCall]:
        module = fn.module
        if module is None:
            return
        bindings = evaluate_bindings(fn)
        for event in fn.events:
            if event[0] != "call":
                continue
            _tag, call, lineno, col = event
            targets, constructed = self.resolve_call(module, fn, call, bindings)
            yield ResolvedCall(
                caller=fn, call=call, lineno=lineno, col=col,
                targets=tuple(sorted(targets)), constructed=constructed,
            )

    def resolve_call(
        self,
        module: ModuleModel,
        fn: Optional[FunctionModel],
        call: tuple,
        bindings: Optional[Dict[str, tuple]] = None,
    ) -> Tuple[Set[str], Optional[str]]:
        """Resolve one lowered ``("call", ...)`` value to target qualnames."""
        project = self.project
        func = call[1]
        targets: Set[str] = set()
        constructed: Optional[str] = None

        def _class_for(value: tuple) -> Optional[ClassModel]:
            cls = project.resolve_class(module, value)
            if cls is not None:
                return cls
            # A name bound earlier in this function to a constructor call.
            if bindings and value[0] == "name":
                bound = bindings.get(value[1])
                if bound is not None and bound[0] == "call":
                    return project.resolve_class(module, bound[1])
            if value[0] == "call":
                return project.resolve_class(module, value[1])
            return None

        if func[0] == "name":
            dotted = project.resolve_name(module, func[1])
            if dotted is not None:
                resolved = project._resolve_reexport(dotted)
                cls = project.class_model(resolved)
                if cls is not None:
                    constructed = cls.qualname
                    init = project.find_method(cls, "__init__")
                    if init is not None:
                        targets.add(init.qualname)
                elif project.function(resolved) is not None or resolved.startswith("builtins."):
                    targets.add(resolved)
        elif func[0] == "attr":
            base, attr = func[1], func[2]
            if base == ("name", "self") and fn is not None and fn.class_name:
                owner = project.class_model(
                    f"{module.module_name}.{fn.class_name}"
                )
                if owner is not None:
                    method = project.find_method(owner, attr)
                    if method is not None:
                        targets.add(method.qualname)
            if not targets:
                dotted = project.resolve_value(module, func)
                if dotted is not None:
                    resolved = project._resolve_reexport(dotted)
                    cls = project.class_model(resolved)
                    if cls is not None:
                        constructed = cls.qualname
                        init = project.find_method(cls, "__init__")
                        if init is not None:
                            targets.add(init.qualname)
                    elif project.function(resolved) is not None or resolved.startswith("builtins."):
                        targets.add(resolved)
            if not targets:
                receiver = _class_for(base)
                if receiver is not None:
                    method = project.find_method(receiver, attr)
                    if method is not None:
                        targets.add(method.qualname)
        return targets, constructed

    # -- debugging dump -----------------------------------------------------

    def dump(self, prefix: str = "") -> str:
        """Human-readable edge list, ``caller -> callee`` per line."""
        lines = []
        for caller in sorted(self._callees):
            if prefix and not caller.startswith(prefix):
                continue
            for callee in sorted(self._callees[caller]):
                lines.append(f"{caller} -> {callee}")
        unresolved = 0
        for call in self.all_sites():
            if not call.targets:
                unresolved += 1
        lines.append(
            f"# {sum(len(edges) for edges in self._callees.values())} edges, "
            f"{len(self.sites)} functions, {unresolved} unresolved call sites"
        )
        return "\n".join(lines)
