"""Dynamic trusted-set membership (ReplicaTEE/Proteus-inspired extension).

RAPTEE's paper fixes the trusted set at bootstrap; this package makes it
dynamic while preserving the repo's determinism discipline:

* :mod:`repro.membership.epoch` — group-key epochs with seeded rotation;
* :mod:`repro.membership.log` — the signed, hash-chained membership log
  and per-node verified views of it;
* :mod:`repro.membership.service` — the K-replica quorum provisioning
  service that owns the log and the epoch chain;
* :mod:`repro.membership.director` — the per-round driver: churn, stale-
  epoch enforcement, and epidemic log propagation.

Everything is opt-in: a deployment built without a
:class:`MembershipConfig` is bit-for-bit the legacy static one.
"""

from repro.membership.director import MembershipDirector, MembershipStats
from repro.membership.epoch import KEY_SIZE, EpochChain, KeyEpoch
from repro.membership.log import (
    ACTIONS,
    MembershipLog,
    MembershipRecord,
    NodeMembershipView,
)
from repro.membership.service import (
    MembershipConfig,
    ReplicatedProvisioningService,
)

__all__ = [
    "ACTIONS",
    "KEY_SIZE",
    "EpochChain",
    "KeyEpoch",
    "MembershipConfig",
    "MembershipDirector",
    "MembershipLog",
    "MembershipRecord",
    "MembershipStats",
    "NodeMembershipView",
    "ReplicatedProvisioningService",
]
