"""Signed, monotonically ordered membership log, and per-node views of it.

Revocation must *propagate*: every trusted node has to learn, in the same
order, which devices joined, left, or were revoked, and which group-key
epoch is in force — otherwise two nodes can disagree about whether a peer
is still a member.  Proteus's append-only ledger motivates the shape: a
hash chain of records, each HMAC-signed by the provisioning service, with
strictly monotone sequence numbers.  A node's :class:`NodeMembershipView`
applies records in order and can therefore never skip or reorder a
revocation; anti-entropy between two views is "replay the suffix the peer
has already verified".

Digest and signature comparisons go through ``constant_time_equal`` —
the same discipline the auth protocol uses (and that ``repro.lint``'s
``crypto-digest-compare`` rule enforces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.crypto.hashing import constant_time_equal, hmac_sha256, sha256

__all__ = [
    "ACTIONS",
    "MembershipRecord",
    "MembershipLog",
    "NodeMembershipView",
]

#: The four record kinds, in no particular order of precedence.
ACTIONS = ("join", "leave", "revoke", "rotate")

#: ``node_id`` used by records that concern no single node (rotations).
NO_NODE = -1

_GENESIS_DIGEST = b"\x00" * 32


def _encode_payload(
    seq: int, round_number: int, action: str, node_id: int, epoch: int,
    prev_digest: bytes,
) -> bytes:
    """Canonical byte encoding of a record's signed fields."""
    return b"|".join(
        (
            b"membership-record",
            seq.to_bytes(8, "big"),
            round_number.to_bytes(8, "big"),
            action.encode("ascii"),
            node_id.to_bytes(8, "big", signed=True),
            epoch.to_bytes(8, "big"),
            prev_digest,
        )
    )


@dataclass(frozen=True)
class MembershipRecord:
    """One entry of the membership log.

    Attributes:
        seq: 1-based, strictly monotone position in the log.
        round_number: simulation round the record was appended.
        action: one of :data:`ACTIONS`.
        node_id: the subject node, or :data:`NO_NODE` for rotations.
        epoch: the group-key epoch in force *after* this record.
        prev_digest: digest of the preceding record (hash chain).
        digest: SHA-256 over the canonical payload.
        signature: HMAC-SHA-256 of the digest under the service's log key.
    """

    seq: int
    round_number: int
    action: str
    node_id: int
    epoch: int
    prev_digest: bytes
    digest: bytes
    signature: bytes

    def payload(self) -> bytes:
        return _encode_payload(
            self.seq, self.round_number, self.action, self.node_id,
            self.epoch, self.prev_digest,
        )


class MembershipLog:
    """Append-only, hash-chained, HMAC-signed record sequence."""

    def __init__(self, signing_key: bytes):
        if len(signing_key) < 16:
            raise ValueError("log signing key must be at least 16 bytes")
        self._key = signing_key
        self._records: List[MembershipRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def latest_seq(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[MembershipRecord, ...]:
        return tuple(self._records)

    def append(
        self, action: str, node_id: int, epoch: int, round_number: int
    ) -> MembershipRecord:
        if action not in ACTIONS:
            raise ValueError(f"unknown membership action {action!r}")
        seq = len(self._records) + 1
        prev_digest = (
            self._records[-1].digest if self._records else _GENESIS_DIGEST
        )
        digest = sha256(
            _encode_payload(seq, round_number, action, node_id, epoch, prev_digest)
        )
        record = MembershipRecord(
            seq=seq,
            round_number=round_number,
            action=action,
            node_id=node_id,
            epoch=epoch,
            prev_digest=prev_digest,
            digest=digest,
            signature=hmac_sha256(self._key, digest),
        )
        self._records.append(record)
        return record

    def verify(self, record: MembershipRecord) -> bool:
        """Check a record's digest and signature (not its chain position)."""
        if not constant_time_equal(sha256(record.payload()), record.digest):
            return False
        return constant_time_equal(
            hmac_sha256(self._key, record.digest), record.signature
        )

    def records_since(
        self, after_seq: int, upto_seq: Optional[int] = None
    ) -> Tuple[MembershipRecord, ...]:
        """Records with ``after_seq < seq <= upto_seq`` (log end if None)."""
        end = len(self._records) if upto_seq is None else upto_seq
        return tuple(self._records[after_seq:end])


class NodeMembershipView:
    """One node's verified, in-order replica of the membership log.

    A view only advances by applying the next record in sequence, after
    re-verifying its signature and chain linkage — so every view that has
    reached sequence *s* agrees exactly on members, revocations, and the
    current epoch as of *s*.
    """

    def __init__(self, node_id: int, log: MembershipLog):
        self.node_id = node_id
        self._log = log
        self.applied_seq = 0
        self.current_epoch = 0
        self._members: Set[int] = set()
        self._revoked: Set[int] = set()
        self._prev_digest = _GENESIS_DIGEST

    def bootstrap(self, members: Iterable[int]) -> None:
        """Pre-load the bootstrap roster (no log records exist for it)."""
        self._members.update(members)

    @property
    def members(self) -> Tuple[int, ...]:
        return tuple(sorted(self._members))

    @property
    def revoked(self) -> Tuple[int, ...]:
        return tuple(sorted(self._revoked))

    def is_member(self, node_id: int) -> bool:
        return node_id in self._members

    def is_revoked(self, node_id: int) -> bool:
        return node_id in self._revoked

    def apply(self, record: MembershipRecord) -> None:
        """Verify and apply the next record; raises on any gap or forgery."""
        if record.seq != self.applied_seq + 1:
            raise ValueError(
                f"out-of-order record {record.seq} "
                f"(view at {self.applied_seq})"
            )
        if not constant_time_equal(record.prev_digest, self._prev_digest):
            raise ValueError(f"record {record.seq} breaks the hash chain")
        if not self._log.verify(record):
            raise ValueError(f"record {record.seq} fails verification")
        if record.action == "join":
            self._members.add(record.node_id)
        elif record.action == "leave":
            self._members.discard(record.node_id)
        elif record.action == "revoke":
            self._members.discard(record.node_id)
            self._revoked.add(record.node_id)
        # "rotate" only moves the epoch, which every action updates below.
        self.current_epoch = record.epoch
        self.applied_seq = record.seq
        self._prev_digest = record.digest

    def catch_up(self, upto_seq: Optional[int] = None) -> int:
        """Apply every verified record up to ``upto_seq``; returns count."""
        applied = 0
        for record in self._log.records_since(self.applied_seq, upto_seq):
            self.apply(record)
            applied += 1
        return applied

    def sync_with(self, peer: "NodeMembershipView") -> int:
        """Anti-entropy pull: catch up to a peer that is further ahead.

        The records themselves come from the shared log object (the wire
        payload in a real deployment); the peer only contributes *how far*
        it has verified, so a lagging peer can never roll this view back.
        """
        if peer.applied_seq <= self.applied_seq:
            return 0
        return self.catch_up(peer.applied_seq)

    def permits(self, node_id: int, epoch: int) -> bool:
        """Gate for trusted exchanges: member, not revoked, current epoch."""
        return (
            node_id in self._members
            and node_id not in self._revoked
            and epoch == self.current_epoch
        )
