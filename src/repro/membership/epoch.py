"""Group-key epochs: seeded rotation of the trusted group key K_T.

RAPTEE provisions one static group key at bootstrap (§IV-A); a single
leaked or revoked trusted device would compromise it forever.  Following
ReplicaTEE's secret-rotation scheme, the key becomes *epochal*: epoch 0 is
the bootstrap key, and every rotation derives the next key from a master
secret with HKDF over the epoch number.  Rotation is deterministic given
the master secret, so two runs under the same seed produce byte-identical
epoch keys — the property every differential test in this repo leans on.

An epoch retired *because of a revocation* is additionally marked: the
fault-drill invariant ("no trusted exchange ever completes under a revoked
epoch's key") checks exchanges against that mark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.crypto.hashing import hkdf

__all__ = ["KEY_SIZE", "KeyEpoch", "EpochChain"]

#: Group keys are AES-128-sized, like the bootstrap K_T.
KEY_SIZE = 16


@dataclass(frozen=True)
class KeyEpoch:
    """One generation of the group key.

    Attributes:
        number: 0 for the bootstrap key, +1 per rotation.
        key: the 16-byte group key of this epoch.
        created_round: simulation round the epoch came into force.
        reason: why the previous epoch ended ("genesis", "scheduled",
            "revocation", "leave", ...).
    """

    number: int
    key: bytes
    created_round: int
    reason: str

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ValueError("epoch number must be non-negative")
        if len(self.key) != KEY_SIZE:
            raise ValueError(f"epoch key must be {KEY_SIZE} bytes")
        if not self.reason:
            raise ValueError("epoch reason must be non-empty")


class EpochChain:
    """The ordered history of group-key epochs.

    Epoch 0 wraps the legacy bootstrap key unchanged, so a chain that is
    never rotated is byte-for-byte the static-key deployment.  Later keys
    are ``HKDF(master_secret, "epoch" || number)`` — independent of the
    retiring key, so compromising one epoch reveals no other.
    """

    def __init__(self, genesis_key: bytes, master_secret: bytes):
        if len(genesis_key) != KEY_SIZE:
            raise ValueError(f"genesis key must be {KEY_SIZE} bytes")
        if len(master_secret) < 16:
            raise ValueError("master secret must be at least 16 bytes")
        self._master = master_secret
        self._epochs: List[KeyEpoch] = [
            KeyEpoch(number=0, key=genesis_key, created_round=0, reason="genesis")
        ]
        #: Epoch numbers retired *by a revocation* — their keys must never
        #: authenticate another trusted exchange.
        self._revoked: Set[int] = set()

    def __len__(self) -> int:
        return len(self._epochs)

    @property
    def current(self) -> KeyEpoch:
        return self._epochs[-1]

    def epoch(self, number: int) -> KeyEpoch:
        if not 0 <= number < len(self._epochs):
            raise KeyError(f"no epoch {number}")
        return self._epochs[number]

    def rotate(self, round_number: int, reason: str = "scheduled") -> KeyEpoch:
        """Derive and install the next epoch; returns it."""
        number = self.current.number + 1
        key = hkdf(
            self._master, b"epoch" + number.to_bytes(8, "big"), length=KEY_SIZE
        )
        if reason == "revocation":
            self._revoked.add(self.current.number)
        epoch = KeyEpoch(
            number=number, key=key, created_round=round_number, reason=reason
        )
        self._epochs.append(epoch)
        return epoch

    def is_revoked_epoch(self, number: int) -> bool:
        """True when ``number`` was retired because of a device revocation."""
        return number in self._revoked

    def revoked_epochs(self) -> Tuple[int, ...]:
        return tuple(sorted(self._revoked))
