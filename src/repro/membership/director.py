"""Runtime orchestration of dynamic trusted-set membership.

The :class:`MembershipDirector` is the per-round driver that the fault
injector ticks at the start of every round (before the recovery manager,
so a node degraded here can start re-attesting the same round).  It

1. applies **trusted churn** — seeded join/leave draws that add fresh
   trusted nodes through ``TrustedInfrastructure.new_trusted_enclave`` or
   retire existing ones (optionally forcing a re-key, since a leaver
   still holds the old epoch's key);
2. **enforces the current epoch** — any trusted node whose enclave holds
   a stale or revoked epoch's key is degraded immediately and its sealed
   blob discarded, so the only way back into trusted exchanges is the
   :class:`~repro.core.recovery.EnclaveRecoveryManager` re-attestation
   ladder against the replicated provisioning service;
3. **propagates the membership log** — a seeded handful of nodes sync
   straight from the service, then every trusted node anti-entropies with
   peers from its own Brahms view (skipping links the active fault plan
   cuts), so revocations reach the whole trusted set epidemically;
4. invalidates the network's per-pair cipher memo when the epoch moved.

All of the director's randomness comes from its own seeded stream — the
protocol RNGs never see a membership draw, which is what keeps the four
pinned legacy scenarios byte-identical when membership is off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.core.node import RapteeNode
from repro.crypto.prng import derive_seed
from repro.membership.log import NodeMembershipView
from repro.membership.service import MembershipConfig, ReplicatedProvisioningService
from repro.sgx.errors import AttestationError, ProvisioningError
from repro.sim.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RapteeConfig
    from repro.core.recovery import EnclaveRecoveryManager
    from repro.faults.injector import FaultInjector
    from repro.sim.engine import Simulation
    from repro.telemetry import Telemetry

__all__ = ["MembershipStats", "MembershipDirector"]


@dataclass
class MembershipStats:
    """Director-side tallies (service-side ones live in telemetry)."""

    joins: int = 0
    failed_joins: int = 0
    leaves: int = 0
    stale_degrades: int = 0
    gossip_syncs: int = 0


class MembershipDirector:
    """Drives churn, epoch enforcement, and log gossip each round."""

    def __init__(
        self,
        service: ReplicatedProvisioningService,
        config: MembershipConfig,
        rng: random.Random,
        seed: int,
        raptee_config: Optional["RapteeConfig"] = None,
    ):
        self.service = service
        self.config = config
        self._rng = rng
        self._seed = seed
        self._raptee_config = raptee_config
        self._views: Dict[int, NodeMembershipView] = {}
        self._injector: Optional["FaultInjector"] = None
        self._recovery: Optional["EnclaveRecoveryManager"] = None
        self._telemetry: Optional["Telemetry"] = None
        self._last_epoch = service.chain.current.number
        self.stats = MembershipStats()

    # -- wiring ---------------------------------------------------------------

    def register_view(self, node_id: int, view: NodeMembershipView) -> None:
        self._views[node_id] = view

    def view(self, node_id: int) -> Optional[NodeMembershipView]:
        return self._views.get(node_id)

    @property
    def views(self) -> Dict[int, NodeMembershipView]:
        """The registered views, keyed by node id (read-only by convention)."""
        return self._views

    def bind(
        self,
        injector: Optional["FaultInjector"] = None,
        recovery: Optional["EnclaveRecoveryManager"] = None,
    ) -> None:
        """Hook into the fault layer: link cuts and permanent revocations."""
        if injector is not None:
            self._injector = injector
        if recovery is not None:
            self._recovery = recovery
            recovery.set_revocation_check(self.service.is_revoked)

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        self._telemetry = telemetry
        self.service.set_telemetry(telemetry)

    # -- the per-round tick ---------------------------------------------------

    def tick(self, simulation: "Simulation") -> None:
        round_number = simulation.round_number
        self._apply_trusted_churn(simulation, round_number)
        current = self.service.chain.current.number
        if current != self._last_epoch:
            # Re-key the transport layer: per-pair keys (and the cached
            # cipher contexts built from them) derive from the retiring
            # epoch, so the memo must be invalidated on rotation.
            simulation.network.rekey_pairs(
                b"epoch" + current.to_bytes(8, "big")
            )
            self._last_epoch = current
        self._enforce_epochs(simulation)
        self._propagate(simulation, round_number)
        if self._telemetry is not None:
            self._telemetry.gauge("membership.epoch").set(
                self.service.chain.current.number
            )
            self._telemetry.gauge("membership.log_length").set(
                self.service.log.latest_seq
            )

    # -- churn ----------------------------------------------------------------

    def _apply_trusted_churn(
        self, simulation: "Simulation", round_number: int
    ) -> None:
        config = self.config
        if config.leave_rate > 0.0 and self._rng.random() < config.leave_rate:
            candidates = [
                node_id
                for node_id in sorted(self._views)
                if node_id in simulation.nodes
                and simulation.nodes[node_id].alive
                and not self.service.is_revoked(node_id)
            ]
            if len(candidates) > 1:  # never retire the last trusted node
                self.leave_node(
                    simulation, self._rng.choice(candidates), round_number
                )
        if config.join_rate > 0.0 and self._rng.random() < config.join_rate:
            self.join_node(simulation, round_number)

    def join_node(
        self, simulation: "Simulation", round_number: int
    ) -> Optional[RapteeNode]:
        """Provision and insert a brand-new trusted node at runtime.

        Returns ``None`` when the candidate cannot be provisioned right
        now (attestation outage, quorum loss, injected flakiness) — the
        join simply does not happen this round.
        """
        if self._raptee_config is None:
            raise RuntimeError("runtime joins require the RAPTEE node config")
        infrastructure = self.service.infrastructure
        node_id = max(simulation.ever_registered) + 1
        try:
            host, _device = infrastructure.new_trusted_enclave(node_id)
        except (ProvisioningError, AttestationError):
            self.stats.failed_joins += 1
            if self._telemetry is not None:
                self._telemetry.counter("membership.failed_joins").inc()
                self._telemetry.event("membership.join_failed", node=node_id)
            return None
        node = RapteeNode(
            node_id,
            NodeKind.TRUSTED,
            self._raptee_config,
            random.Random(derive_seed(self._seed, "node", node_id)),
            enclave=host,
        )
        # Bootstrap view: a seeded sample of currently alive nodes.
        alive_ids = sorted(
            other.node_id for other in simulation.alive_nodes()
        )
        view_size = self._raptee_config.brahms.view_size
        if alive_ids:
            node.seed_view(
                sorted(self._rng.sample(alive_ids, min(view_size, len(alive_ids))))
            )
        simulation.add_node(node)
        if simulation.telemetry is not None:
            host.set_telemetry(simulation.telemetry, node_id)
        self.service.join(node_id, round_number)
        view = self.service.new_view(node_id)
        node.set_membership_view(view)
        node.refresh_enclave_epoch()
        self.register_view(node_id, view)
        if self._recovery is not None:
            self._recovery.adopt(node)
        self.stats.joins += 1
        return node

    def leave_node(
        self, simulation: "Simulation", node_id: int, round_number: int
    ) -> None:
        """Retire a trusted node (voluntary departure)."""
        self.service.leave(
            node_id, round_number, rotate=self.config.rotate_on_leave
        )
        self._views.pop(node_id, None)
        simulation.remove_node(node_id)
        self.stats.leaves += 1

    # -- epoch enforcement ----------------------------------------------------

    def _enforce_epochs(self, simulation: "Simulation") -> None:
        """Degrade any trusted node holding a stale or revoked epoch key.

        The degraded node's sealed blob is discarded too: the seal wraps
        the *superseded* key, so the rung-1 sealed-restore shortcut must
        not resurrect it — re-attestation against the current epoch is the
        only way back (exactly the ReplicaTEE re-provisioning path).
        """
        current = self.service.chain.current.number
        for node_id in sorted(self._views):
            node = simulation.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            if not isinstance(node, RapteeNode) or not node.trusted_role:
                continue
            if node.degraded:
                continue
            stale = node.enclave_epoch != current
            revoked = self.service.is_revoked(node_id)
            if not (stale or revoked):
                continue
            node.note_enclave_failure()
            if self._recovery is not None:
                self._recovery.discard_sealed_blob(node_id)
            self.stats.stale_degrades += 1
            if self._telemetry is not None:
                self._telemetry.counter("membership.stale_degrades").inc()
                self._telemetry.event(
                    "membership.stale_degrade",
                    node=node_id,
                    held_epoch=node.enclave_epoch,
                    current_epoch=current,
                    revoked=revoked,
                )

    # -- log propagation ------------------------------------------------------

    def _propagate(self, simulation: "Simulation", round_number: int) -> None:
        log = self.service.log
        if log.latest_seq == 0:
            return
        candidates = [
            node_id
            for node_id in sorted(self._views)
            if node_id in simulation.nodes and simulation.nodes[node_id].alive
        ]
        if not candidates:
            return
        # 1. Registration-authority seeding: a few nodes sync directly.
        contacts = min(self.config.service_contacts, len(candidates))
        if contacts:
            for node_id in sorted(self._rng.sample(candidates, contacts)):
                self.stats.gossip_syncs += self._views[node_id].catch_up()
        # 2. Epidemic anti-entropy along each node's own Brahms view.
        if self.config.gossip_fanout == 0:
            return
        for node_id in candidates:
            view = self._views[node_id]
            node = simulation.nodes[node_id]
            contacted = 0
            seen = set()
            for peer_id in node.view_ids():
                if contacted >= self.config.gossip_fanout:
                    break
                if peer_id == node_id or peer_id in seen:
                    continue
                seen.add(peer_id)
                peer_view = self._views.get(peer_id)
                if peer_view is None:
                    continue
                peer = simulation.nodes.get(peer_id)
                if peer is None or not peer.alive:
                    continue
                if self._blocked(node_id, peer_id, round_number):
                    continue
                contacted += 1
                synced = view.sync_with(peer_view) + peer_view.sync_with(view)
                self.stats.gossip_syncs += synced

    def _blocked(self, src: int, dst: int, round_number: int) -> bool:
        injector = self._injector
        return injector is not None and injector.blocks(src, dst, round_number)
