"""ReplicaTEE-style replicated provisioning with quorum and failover.

A single :class:`~repro.sgx.provisioning.GroupKeyProvisioner` is a single
point of failure: crash it (or take the attestation service down) and no
enclave can ever be (re-)provisioned.  Following ReplicaTEE, the service
runs K provisioner replicas that each independently attest a candidate
enclave; the group key is released only when a *quorum* (majority of the
configured replica count) approves.  Failover is deterministic: the
release is performed by the lowest-numbered alive approving replica, so
two runs under the same fault plan pick the same primary.

Replica 0 *is* the infrastructure's legacy provisioner object — fault
hooks, telemetry wiring, and counters installed against
``infrastructure.provisioner`` keep observing the same instance, and a
deployment that never enables membership is untouched.

The service is also the sole writer of the membership log
(:mod:`repro.membership.log`) and the owner of the epoch chain
(:mod:`repro.membership.epoch`): joins, leaves, revocations, and
rotations all pass through here so the log stays totally ordered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.crypto.prng import Sha256Prng
from repro.membership.epoch import EpochChain, KeyEpoch
from repro.membership.log import MembershipLog, NodeMembershipView
from repro.sgx.errors import ProvisioningError
from repro.sgx.provisioning import GroupKeyProvisioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deployment import TrustedInfrastructure
    from repro.sgx.attestation import Quote
    from repro.telemetry import Telemetry

__all__ = ["MembershipConfig", "ReplicatedProvisioningService"]


@dataclass(frozen=True)
class MembershipConfig:
    """Knobs for dynamic trusted-set membership.

    Attributes:
        enabled: master switch; False builds the legacy static deployment.
        replica_count: K provisioner replicas (quorum = majority of K).
        gossip_fanout: trusted peers each node anti-entropies the
            membership log with per round (along its Brahms view).
        service_contacts: nodes per round that sync straight from the
            service (the "registration authority" seeding the gossip).
        staleness_bound: rounds a log record may stay unapplied at an
            alive trusted node before the staleness invariant trips.
        join_rate: per-round probability a fresh trusted node joins.
        leave_rate: per-round probability a random trusted node leaves.
        rotate_on_leave: whether a voluntary leave also forces a re-key
            (a leaver still holds the old epoch's key).
    """

    enabled: bool = True
    replica_count: int = 3
    gossip_fanout: int = 3
    service_contacts: int = 2
    staleness_bound: int = 8
    join_rate: float = 0.0
    leave_rate: float = 0.0
    rotate_on_leave: bool = True

    def __post_init__(self) -> None:
        if self.replica_count < 1:
            raise ValueError("replica_count must be at least 1")
        if self.gossip_fanout < 0 or self.service_contacts < 0:
            raise ValueError("fanout/contacts must be non-negative")
        if self.staleness_bound < 1:
            raise ValueError("staleness_bound must be at least 1 round")
        for rate in (self.join_rate, self.leave_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("churn rates must be in [0, 1]")


class ReplicatedProvisioningService:
    """K-replica provisioning front-end plus membership-log authority."""

    def __init__(
        self,
        infrastructure: "TrustedInfrastructure",
        rng: Sha256Prng,
        replica_count: int = 3,
    ):
        if replica_count < 1:
            raise ValueError("replica_count must be at least 1")
        self.infrastructure = infrastructure
        self._attestation = infrastructure.attestation
        self.chain = EpochChain(infrastructure.group_key, rng.bytes(32))
        self.log = MembershipLog(rng.bytes(32))
        # Replica 0 IS the legacy provisioner: existing fault hooks,
        # counters, and telemetry wired against it keep working.
        self._replicas: Dict[int, GroupKeyProvisioner] = {
            0: infrastructure.provisioner
        }
        for replica_id in range(1, replica_count):
            self._replicas[replica_id] = GroupKeyProvisioner(
                self._attestation,
                infrastructure.group_key,
                rng.spawn("replica", replica_id),
            )
        self._alive: Dict[int, bool] = {
            replica_id: True for replica_id in self._replicas
        }
        self._members: List[int] = []
        self._bootstrap_roster: List[int] = []
        self._revoked: List[int] = []
        self._telemetry: Optional["Telemetry"] = None

    # -- replica management --------------------------------------------------

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def quorum_size(self) -> int:
        """Majority of the *configured* replica count."""
        return len(self._replicas) // 2 + 1

    def alive_replica_ids(self) -> Tuple[int, ...]:
        return tuple(
            replica_id
            for replica_id in sorted(self._replicas)
            if self._alive[replica_id]
        )

    def primary_replica_id(self) -> Optional[int]:
        """Deterministic failover: the lowest-numbered alive replica."""
        alive = self.alive_replica_ids()
        return alive[0] if alive else None

    def crash_replica(self, replica_id: int) -> None:
        self._require_replica(replica_id)
        if not self._alive[replica_id]:
            return
        self._alive[replica_id] = False
        self._event("membership.replica_crash", replica=replica_id)
        self._count("membership.replica_crashes")

    def restore_replica(self, replica_id: int) -> None:
        """Bring a crashed replica back; the service re-syncs its key."""
        self._require_replica(replica_id)
        if self._alive[replica_id]:
            return
        self._alive[replica_id] = True
        current = self.chain.current
        self._replicas[replica_id].rekey(current.key, current.number)
        self._event("membership.replica_restore", replica=replica_id)

    def _require_replica(self, replica_id: int) -> None:
        if replica_id not in self._replicas:
            raise KeyError(f"no provisioner replica {replica_id}")

    def set_fault_hook(self, hook: Optional[Callable[[], Optional[str]]]) -> None:
        """Install a provisioning fault hook on every replica."""
        for replica_id in sorted(self._replicas):
            self._replicas[replica_id].set_fault_hook(hook)

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        self._telemetry = telemetry
        for replica_id in sorted(self._replicas):
            self._replicas[replica_id].set_telemetry(telemetry)

    # -- quorum provisioning -------------------------------------------------

    def provision(self, quote: "Quote", enclave_public_key) -> bytes:
        """Attest ``quote`` at a quorum of replicas, then release the key.

        Each alive replica runs the full verification pipeline (fault
        gate, key binding, attestation).  Once a majority of the
        *configured* replica count approves, the lowest approving replica
        releases the epoch-tagged key; too many crashed replicas means
        the quorum is unreachable and provisioning fails outright.
        """
        alive = self.alive_replica_ids()
        needed = self.quorum_size()
        if len(alive) < needed:
            raise ProvisioningError(
                f"provisioning quorum unreachable: "
                f"{len(alive)} replica(s) alive, {needed} required"
            )
        approvals: List[int] = []
        last_error: Optional[ProvisioningError] = None
        for replica_id in alive:
            try:
                self._replicas[replica_id].verify(quote, enclave_public_key)
            except ProvisioningError as error:
                last_error = error
                continue
            approvals.append(replica_id)
            if len(approvals) >= needed:
                break
        if len(approvals) < needed:
            raise ProvisioningError(
                f"provisioning quorum not reached: "
                f"{len(approvals)}/{needed} approvals"
            ) from last_error
        primary = approvals[0]
        self._event(
            "membership.provision",
            node=quote.device_id,
            primary=primary,
            approvals=len(approvals),
            epoch=self.chain.current.number,
        )
        return self._replicas[primary].release(
            enclave_public_key, device_id=quote.device_id
        )

    # -- epochs and the membership log --------------------------------------

    def rotate(self, round_number: int, reason: str = "scheduled") -> KeyEpoch:
        """Advance the epoch, re-key every replica, log the rotation."""
        epoch = self.chain.rotate(round_number, reason=reason)
        for replica_id in sorted(self._replicas):
            self._replicas[replica_id].rekey(epoch.key, epoch.number)
        self.log.append("rotate", -1, epoch.number, round_number)
        self._count("membership.rotations", reason=reason)
        self._gauge("membership.epoch", epoch.number)
        self._event(
            "membership.rotate", epoch=epoch.number, reason=reason
        )
        return epoch

    def revoke(self, node_id: int, round_number: int) -> KeyEpoch:
        """Revoke a trusted device and force a re-key.

        The revocation record is logged under the epoch being retired,
        then the forced rotation appends its own record — every view that
        learns the new epoch has necessarily seen the revocation first.
        """
        if node_id in self._revoked:
            return self.chain.current
        self._attestation.revoke_device(node_id)
        self._revoked.append(node_id)
        if node_id in self._members:
            self._members.remove(node_id)
        self.log.append("revoke", node_id, self.chain.current.number, round_number)
        self._count("membership.revocations")
        self._event("membership.revoke", node=node_id)
        return self.rotate(round_number, reason="revocation")

    def join(self, node_id: int, round_number: int) -> None:
        if node_id in self._revoked:
            raise ProvisioningError(f"device {node_id} is revoked")
        if node_id not in self._members:
            self._members.append(node_id)
        self.log.append("join", node_id, self.chain.current.number, round_number)
        self._count("membership.joins")
        self._event("membership.join", node=node_id)

    def leave(
        self, node_id: int, round_number: int, rotate: bool = True
    ) -> None:
        if node_id in self._members:
            self._members.remove(node_id)
        self.log.append("leave", node_id, self.chain.current.number, round_number)
        self._count("membership.leaves")
        self._event("membership.leave", node=node_id)
        if rotate:
            self.rotate(round_number, reason="leave")

    def bootstrap_member(self, node_id: int) -> None:
        """Register a bootstrap-time member without a log record."""
        if node_id not in self._members:
            self._members.append(node_id)
        if node_id not in self._bootstrap_roster:
            self._bootstrap_roster.append(node_id)

    def members(self) -> Tuple[int, ...]:
        return tuple(sorted(self._members))

    def revoked(self) -> Tuple[int, ...]:
        return tuple(sorted(self._revoked))

    def is_revoked(self, node_id: int) -> bool:
        return node_id in self._revoked

    def new_view(self, node_id: int) -> NodeMembershipView:
        """A fully caught-up view for a freshly provisioned member.

        Seeded from the *bootstrap* roster and replayed through the full
        log, so it lands byte-for-byte on the state every incrementally
        maintained view converges to.
        """
        view = NodeMembershipView(node_id, self.log)
        view.bootstrap(sorted(self._bootstrap_roster))
        view.catch_up()
        return view

    # -- telemetry helpers ---------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(name, **labels).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self._telemetry is not None:
            self._telemetry.gauge(name).set(value)

    def _event(self, name: str, **fields) -> None:
        if self._telemetry is not None:
            self._telemetry.event(name, **fields)
