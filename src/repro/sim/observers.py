"""Reusable observers: per-round trace collection.

The per-round records produced here are the raw material for every paper
metric (resilience, discovery time, stability time — computed in
:mod:`repro.analysis.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.sim.engine import Observer, Simulation
from repro.sim.node import NodeKind

__all__ = ["RoundRecord", "ViewTraceObserver", "DiscoveryObserver"]


@dataclass
class RoundRecord:
    """Snapshot of view composition at the end of one round.

    ``byzantine_fraction`` maps each correct node to the fraction of
    Byzantine IDs in its dynamic view; ``by_kind`` groups the same values by
    node kind, which the identification-attack analysis needs.
    """

    round_number: int
    byzantine_fraction: Dict[int, float] = field(default_factory=dict)
    by_kind: Dict[NodeKind, List[float]] = field(default_factory=dict)

    @property
    def mean_byzantine_fraction(self) -> float:
        if not self.byzantine_fraction:
            return 0.0
        return sum(self.byzantine_fraction.values()) / len(self.byzantine_fraction)


class ViewTraceObserver(Observer):
    """Records, per round, the Byzantine pollution of every correct view."""

    def __init__(self) -> None:
        self.records: List[RoundRecord] = []

    def on_round_end(self, simulation: Simulation) -> None:
        byzantine = simulation.byzantine_ids
        record = RoundRecord(round_number=simulation.round_number)
        for node in simulation.correct_nodes():
            view = node.view_ids()
            if not view:
                fraction = 0.0
            else:
                fraction = sum(1 for peer in view if peer in byzantine) / len(view)
            record.byzantine_fraction[node.node_id] = fraction
            record.by_kind.setdefault(node.kind, []).append(fraction)
        self.records.append(record)


class DiscoveryObserver(Observer):
    """Tracks the round at which each correct node has discovered at least
    ``threshold`` of the non-Byzantine IDs (paper: 75 %).

    Discovery is cumulative: an ID counts once seen in any push, pull reply
    or trusted exchange (nodes expose this as :meth:`NodeBase.known_ids`).
    """

    def __init__(self, threshold: float = 0.75):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.discovery_round: Dict[int, int] = {}
        self._target_ids: Set[int] = set()

    def on_round_end(self, simulation: Simulation) -> None:
        if not self._target_ids:
            self._target_ids = set(simulation.correct_node_ids())
        target_count = len(self._target_ids)
        if target_count == 0:
            return
        for node in simulation.correct_nodes():
            if node.node_id in self.discovery_round:
                continue
            known = self._target_ids.intersection(node.known_ids())
            # A node always knows itself.
            known.add(node.node_id)
            if len(known) / target_count >= self.threshold:
                self.discovery_round[node.node_id] = simulation.round_number

    def all_discovered_round(self, simulation: Simulation) -> int:
        """Round by which *all* correct nodes reached the threshold.

        Returns -1 if some node has not yet reached it.
        """
        correct = simulation.correct_node_ids()
        if not correct.issubset(self.discovery_round.keys()):
            return -1
        return max(self.discovery_round[node_id] for node_id in correct)
