"""Bootstrap: initial view assignment.

"To start the experiment, each node initiates [the protocol] with a view
composed of a uniform random sample of the global membership" (§V-A).  The
bootstrap service models the paper's bootstrap node: it knows the full
membership and hands each joining node an independent uniform sample.

Adversarial bootstrap variants (used by §VI-B's poisoned-trusted-node
injection) live in :mod:`repro.adversary.poisoned`.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = ["UniformBootstrap"]


class UniformBootstrap:
    """Uniform-sample bootstrap over a fixed global membership."""

    def __init__(self, membership: Sequence[int], rng: random.Random):
        if not membership:
            raise ValueError("membership must be non-empty")
        self._membership = list(membership)
        self._rng = rng

    def initial_view(self, node_id: int, size: int) -> List[int]:
        """A uniform random sample (without the node itself, no duplicates).

        If ``size`` exceeds the available membership the whole membership
        (minus the node) is returned — small test topologies hit this.
        """
        candidates = [peer for peer in self._membership if peer != node_id]
        if size >= len(candidates):
            return list(candidates)
        return self._rng.sample(candidates, size)
