"""Round-based simulation engine.

Brahms and RAPTEE are round-synchronous protocols (the paper runs 200 rounds
of 2.5 s); the engine executes each round in three phases over all alive
nodes:

1. **begin** — every node resets its per-round buffers;
2. **gossip** — every node, in a per-round shuffled order, sends its pushes
   and runs its pull/auth/swap sessions synchronously;
3. **end** — every node integrates received IDs into its view and samplers.

Because views only change in phase 3, the order of nodes inside phase 2 has
no effect on the information available to any node — every pull reply is
computed from start-of-round state — which makes runs independent of
iteration order and therefore reproducible under a seed.
"""

from __future__ import annotations

import random
from contextlib import contextmanager, nullcontext
from typing import (
    TYPE_CHECKING,
    Callable,
    ContextManager,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.sim.churn import ChurnModel, NoChurn
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.node import NodeBase, NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["RoundContext", "Observer", "FaultController", "Simulation"]


class RoundContext:
    """Per-round handle nodes use to act on the network.

    The network reference is bound at construction: ``send_push``/``request``
    are called once per message, so skipping the per-call attribute hop
    through the simulation measurably trims gossip-phase overhead.
    """

    __slots__ = ("_simulation", "_network", "round_number")

    def __init__(self, simulation: "Simulation", round_number: int):
        self._simulation = simulation
        self._network = simulation.network
        self.round_number = round_number

    @property
    def network(self) -> Network:
        return self._network

    def send_push(self, src: int, dst: int) -> bool:
        return self._network.send_push(src, dst)

    def request(self, src: int, dst: int, message: Message) -> Optional[Message]:
        return self._network.request(src, dst, message)


class Observer:
    """Hook invoked after every completed round."""

    def on_round_end(self, simulation: "Simulation") -> None:
        raise NotImplementedError


class FaultController:
    """Hook invoked at the start of every round, before any node acts.

    The fault layer (:mod:`repro.faults`) uses it to crash/restart nodes,
    toggle SGX-infrastructure outages and drive enclave recovery.  Exactly
    one controller can be installed per simulation.
    """

    def on_round_start(self, simulation: "Simulation") -> None:
        raise NotImplementedError


class Simulation:
    """Drives a population of :class:`NodeBase` through synchronous rounds."""

    def __init__(
        self,
        network: Network,
        nodes: Iterable[NodeBase],
        rng: random.Random,
        churn: Optional[ChurnModel] = None,
        node_factory: Optional[Callable[[int], NodeBase]] = None,
    ):
        self.network = network
        self.nodes: Dict[int, NodeBase] = {}
        self._rng = rng
        self._churn = churn or NoChurn()
        self._node_factory = node_factory
        if self._node_factory is None and self._churn.may_produce_arrivals:
            raise ValueError(
                f"churn model {type(self._churn).__name__} produces arrivals; "
                f"a node_factory is required to build the joining nodes"
            )
        self._fault_controller: Optional[FaultController] = None
        #: Optional instrumentation hub (see :mod:`repro.telemetry`); the
        #: engine advances its round/phase clock and emits lifecycle events.
        self.telemetry: Optional["Telemetry"] = None
        self.round_number = 0
        self._next_node_id = 0
        #: Every node ID that was ever part of the membership (departed ones
        #: included) — the reference set for "views never cite a node that
        #: never existed" invariant checks.
        self.ever_registered: Set[int] = set()
        for node in nodes:
            self.add_node(node)

    def set_churn(
        self,
        churn: Optional[ChurnModel],
        node_factory: Optional[Callable[[int], NodeBase]] = None,
    ) -> None:
        """Attach (or clear, with ``None``) a churn model after construction.

        Scenario builders assemble the node population first and decide on
        churn later; this is the supported seam for that — with the same
        arrivals-need-a-factory validation the constructor applies.
        """
        churn = churn or NoChurn()
        if node_factory is None and churn.may_produce_arrivals:
            raise ValueError(
                f"churn model {type(churn).__name__} produces arrivals; "
                f"a node_factory is required to build the joining nodes"
            )
        self._churn = churn
        self._node_factory = node_factory

    # -- membership ------------------------------------------------------------

    def add_node(self, node: NodeBase) -> None:
        self.nodes[node.node_id] = node
        self.network.register(node)
        self._next_node_id = max(self._next_node_id, node.node_id + 1)
        self.ever_registered.add(node.node_id)
        if self.telemetry is not None:
            # Churn arrivals join after wiring time; hand them the hub so
            # their degrade/promote events and profiling timers still land.
            node.telemetry = self.telemetry
        self._invalidate_kind_cache()

    def remove_node(self, node_id: int) -> None:
        node = self.nodes.pop(node_id, None)
        if node is None:
            # Unknown ID: explicit no-op.  Touching the network here would
            # be wrong — another registry (or nothing) may own that ID, and
            # unregister also drops per-pair key material by ID.
            return
        node.alive = False
        self.network.unregister(node_id)
        self._invalidate_kind_cache()

    def set_node_alive(self, node_id: int, alive: bool) -> None:
        """Toggle a node's liveness in place (crash / restart).

        Unlike :meth:`remove_node`, the node stays registered: messages to
        it are dropped while it is down, and it resumes with its pre-crash
        protocol state when revived.  Goes through the engine so the
        kind-query caches stay coherent.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise KeyError(f"no node {node_id} in the simulation")
        if node.alive != alive:
            node.alive = alive
            self._invalidate_kind_cache()

    def alive_nodes(self) -> List[NodeBase]:
        return [node for node in self.nodes.values() if node.alive]

    def _invalidate_kind_cache(self) -> None:
        self._kind_cache: Dict[NodeKind, frozenset] = {}

    def ids_of_kind(self, kind: NodeKind) -> frozenset:
        """Alive node IDs of a given kind (cached until membership changes)."""
        cached = self._kind_cache.get(kind)
        if cached is None:
            cached = frozenset(
                node.node_id for node in self.nodes.values()
                if node.alive and node.kind is kind
            )
            self._kind_cache[kind] = cached
        return cached

    @property
    def byzantine_ids(self) -> frozenset:
        return self.ids_of_kind(NodeKind.BYZANTINE)

    def correct_node_ids(self) -> frozenset:
        """All alive non-Byzantine IDs (honest + trusted + poisoned-trusted)."""
        return frozenset(
            node.node_id for node in self.nodes.values()
            if node.alive and not node.kind.is_byzantine
        )

    def correct_nodes(self) -> List[NodeBase]:
        return [
            node for node in self.nodes.values()
            if node.alive and not node.kind.is_byzantine
        ]

    # -- fault layer -----------------------------------------------------------

    def set_fault_controller(self, controller: Optional[FaultController]) -> None:
        """Install (or clear, with ``None``) the round-start fault hook."""
        self._fault_controller = controller

    @property
    def fault_controller(self) -> Optional[FaultController]:
        """The installed round-start fault hook, if any.

        Exposed read-only so alternative clocks (the event engine in
        :mod:`repro.events`) can fire the same hook at their own round
        boundaries without reaching into a private attribute.
        """
        return self._fault_controller

    # -- telemetry -------------------------------------------------------------

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Install (or clear, with ``None``) the instrumentation hub.

        Prefer :func:`repro.telemetry.harness.wire_telemetry`, which also
        threads the hub through the network, nodes, enclaves and services.
        """
        self.telemetry = telemetry

    def _phase(self, name: str) -> ContextManager[None]:
        if self.telemetry is None:
            return nullcontext()
        return self._instrumented_phase(name)

    @contextmanager
    def _instrumented_phase(self, name: str) -> Iterator[None]:
        # The profiler timer is inert unless profiling is armed; stacking it
        # here is what gives `repro bench` its wall-clock-per-phase rows.
        with self.telemetry.phase(name):
            with self.telemetry.timer(f"phase.{name}"):
                yield

    # -- execution -------------------------------------------------------------

    def apply_churn(self) -> None:
        """Apply this round's churn events (departures, then arrivals).

        Public because it is part of the per-round boundary work shared
        with the event-driven engine (:mod:`repro.events`), which opens
        rounds on its own clock and must run the same membership step.
        """
        # Only *alive* nodes are candidates for departure and count toward
        # the arrival rate: a crashed (alive=False) node is already out of
        # the protocol, so letting churn "depart" it would silently swallow
        # a departure event and inflate UniformChurn's arrival population.
        alive_ids = sorted(
            node_id for node_id, node in self.nodes.items() if node.alive
        )
        event = self._churn.events_for_round(self.round_number, alive_ids, self._rng)
        for node_id in event.departures:
            self.remove_node(node_id)
            if self.telemetry is not None:
                self.telemetry.event("churn.departure", node=node_id)
        if event.arrivals and self._node_factory is None:
            raise RuntimeError(
                f"churn model {type(self._churn).__name__} produced "
                f"{event.arrivals} arrival(s) at round {self.round_number} "
                f"but no node_factory is set"
            )
        for _ in range(event.arrivals):
            new_node = self._node_factory(self._next_node_id)
            self.add_node(new_node)
            if self.telemetry is not None:
                self.telemetry.event("churn.arrival", node=new_node.node_id)

    def run_round(self) -> None:
        """Execute one full round."""
        self.round_number += 1
        self.network.current_round = self.round_number
        if self.telemetry is not None:
            self.telemetry.begin_round(self.round_number)
        self.apply_churn()
        if self._fault_controller is not None:
            with self._phase("faults"):
                self._fault_controller.on_round_start(self)
        ctx = RoundContext(self, self.round_number)

        alive = self.alive_nodes()
        with self._phase("begin"):
            for node in alive:
                node.begin_round(ctx)

        order = list(alive)
        self._rng.shuffle(order)
        with self._phase("gossip"):
            for node in order:
                if node.alive:
                    node.gossip(ctx)

        with self._phase("end"):
            for node in alive:
                if node.alive:
                    node.end_round(ctx)
        if self.telemetry is not None:
            self.telemetry.end_round(len(self.alive_nodes()))

    def run(self, rounds: int, observers: Sequence[Observer] = ()) -> None:
        """Run ``rounds`` rounds, invoking observers after each."""
        for _ in range(rounds):
            self.run_round()
            for observer in observers:
                observer.on_round_end(self)

    def final_views(self) -> Dict[int, List[int]]:
        """Every correct node's current view, in id order.

        The same byte-compare surface the sharded engine exposes
        (:meth:`repro.shard.engine.ShardSimulation.final_views`), so
        cross-engine comparisons read both through one call.  Crashed
        (``alive=False``) correct nodes are included — their frozen view
        is part of the state being compared — while departed nodes are
        not, matching the shard engine's crash model.
        """
        return {
            node_id: list(self.nodes[node_id].view_ids())
            for node_id in sorted(self.nodes)
            if not self.nodes[node_id].kind.is_byzantine
        }
