"""Wire messages exchanged by peer-sampling nodes.

The message vocabulary follows the paper:

* Brahms gossip: ``Push`` (sender's ID only, §III-A), ``PullRequest`` and
  ``PullReply`` (full view of the responder).
* RAPTEE mutual authentication (§IV-A): ``AuthChallenge`` (r_A),
  ``AuthResponse`` (r_B, [H(r_A‖r_B)]_{K_B}) and ``AuthConfirm``
  ([H(r_B‖r_A)]_{K_A}).
* RAPTEE trusted communication (§IV-B): ``TrustedSwapRequest`` /
  ``TrustedSwapReply`` carrying half-views.

All messages are plain frozen dataclasses; the transport layer (see
:mod:`repro.sim.network`) handles encryption and accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "Message",
    "Push",
    "PullRequest",
    "PullReply",
    "AuthChallenge",
    "AuthResponse",
    "AuthConfirm",
    "AuthResult",
    "TrustedSwapRequest",
    "TrustedSwapReply",
]


@dataclass(frozen=True)
class Message:
    """Base class; ``sender`` is the node ID of the originator."""

    sender: int


@dataclass(frozen=True)
class Push(Message):
    """Brahms push: advertises only the sender's own ID."""


@dataclass(frozen=True)
class PullRequest(Message):
    """Brahms pull request: asks the receiver for its full view."""


@dataclass(frozen=True)
class PullReply(Message):
    """Answer to a pull request: the responder's current view."""

    ids: Tuple[int, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class AuthChallenge(Message):
    """First auth flow: A sends the pseudo-random challenge r_A."""

    r_a: bytes = b""


@dataclass(frozen=True)
class AuthResponse(Message):
    """Second auth flow: B returns r_B and [H(r_A‖r_B)]_{K_B}."""

    r_b: bytes = b""
    proof: bytes = b""


@dataclass(frozen=True)
class AuthConfirm(Message):
    """Third auth flow: A returns [H(r_B‖r_A)]_{K_A}."""

    proof: bytes = b""


@dataclass(frozen=True)
class AuthResult(Message):
    """Synchronous outcome of a handshake (not a wire message): whether the
    responder recognized the initiator as sharing its key."""

    mutual: bool = False


@dataclass(frozen=True)
class TrustedSwapRequest(Message):
    """Trusted communication: initiator offers half of its view."""

    offered: Tuple[int, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class TrustedSwapReply(Message):
    """Trusted communication: responder returns half of its own view."""

    offered: Tuple[int, ...] = field(default_factory=tuple)
