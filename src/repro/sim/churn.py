"""Churn models: node departures and arrivals over rounds.

The paper's evaluation runs a static membership (its metrics — discovery
time, stability time — are defined over a fixed population), but peer
sampling exists to handle churn, so the simulator supports it for the
robustness examples and failure-injection tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["ChurnEvent", "ChurnModel", "NoChurn", "UniformChurn", "CatastrophicFailure"]


@dataclass(frozen=True)
class ChurnEvent:
    """What happens to membership at the start of a round."""

    departures: List[int]
    arrivals: int  # number of fresh nodes to create


class ChurnModel:
    """Interface: decide the churn event for each round."""

    def events_for_round(self, round_number: int, alive_ids: Sequence[int], rng: random.Random) -> ChurnEvent:
        raise NotImplementedError

    @property
    def may_produce_arrivals(self) -> Optional[bool]:
        """Whether this model can ever emit arrivals.

        ``True``/``False`` let :class:`~repro.sim.engine.Simulation` validate
        the ``node_factory`` requirement at construction time; ``None``
        (the base-class default) means "unknown" and defers the check to the
        round in which arrivals actually appear.
        """
        return None


class NoChurn(ChurnModel):
    """Static membership (the paper's evaluation setting)."""

    def events_for_round(self, round_number, alive_ids, rng):
        return ChurnEvent(departures=[], arrivals=0)

    @property
    def may_produce_arrivals(self) -> bool:
        return False


class UniformChurn(ChurnModel):
    """Each round, each alive node departs with probability ``leave_rate``
    and ``join_rate`` × current population fresh nodes arrive."""

    def __init__(self, leave_rate: float, join_rate: float):
        if not 0.0 <= leave_rate < 1.0:
            raise ValueError("leave_rate must be in [0, 1)")
        if join_rate < 0.0:
            raise ValueError("join_rate must be non-negative")
        self.leave_rate = leave_rate
        self.join_rate = join_rate

    def events_for_round(self, round_number, alive_ids, rng):
        departures = [node for node in alive_ids if rng.random() < self.leave_rate]
        arrivals = int(round(self.join_rate * len(alive_ids)))
        return ChurnEvent(departures=departures, arrivals=arrivals)

    @property
    def may_produce_arrivals(self) -> bool:
        return self.join_rate > 0.0


class CatastrophicFailure(ChurnModel):
    """Kill a fixed fraction of the population at one specific round.

    Used by the failure-injection tests to check that the overlay does not
    partition and that views repopulate with alive nodes.
    """

    def __init__(self, at_round: int, fraction: float):
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        self.at_round = at_round
        self.fraction = fraction

    def events_for_round(self, round_number, alive_ids, rng):
        if round_number != self.at_round:
            return ChurnEvent(departures=[], arrivals=0)
        count = int(len(alive_ids) * self.fraction)
        return ChurnEvent(departures=rng.sample(list(alive_ids), count), arrivals=0)

    @property
    def may_produce_arrivals(self) -> bool:
        return False
