"""Node interface for the round-based simulator.

A protocol (Brahms, RAPTEE, a Byzantine strategy, a plain gossip PSS) is a
:class:`NodeBase` subclass.  The engine drives three phases per round:

1. ``begin_round`` — reset per-round buffers;
2. ``gossip`` — the node's *active* behaviour: emit pushes and run pull
   sessions (synchronous request-response) through the
   :class:`~repro.sim.engine.RoundContext`;
3. ``end_round`` — integrate what was received into view and samples.

Passive behaviour — answering pushes and requests from other nodes — goes
through :meth:`on_push` and :meth:`handle_request`, called by the network
when messages arrive.
"""

from __future__ import annotations

import enum
from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager, List, Optional

from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RoundContext
    from repro.telemetry.hub import Telemetry

__all__ = ["NodeKind", "NodeBase"]


class NodeKind(enum.Enum):
    """Role of a node in the experiment topology.

    ``POISONED_TRUSTED`` nodes are genuine SGX devices bought by the
    adversary (§VI-B): they run the *correct* trusted code but start with
    adversarially poisoned views.  They are counted on the adversary's side
    for injection budgets but, having correct code, are not Byzantine.
    """

    HONEST = "honest"
    TRUSTED = "trusted"
    BYZANTINE = "byzantine"
    POISONED_TRUSTED = "poisoned_trusted"

    @property
    def runs_trusted_code(self) -> bool:
        return self in (NodeKind.TRUSTED, NodeKind.POISONED_TRUSTED)

    @property
    def is_byzantine(self) -> bool:
        return self is NodeKind.BYZANTINE

    @classmethod
    def for_banded_id(
        cls, node_id: int, n_byzantine: int, n_trusted: int = 0
    ) -> "NodeKind":
        """Role under the id-banded layout every topology builder uses:
        ids ``[0, n_byzantine)`` are Byzantine, the next ``n_trusted`` are
        trusted, the rest honest.  The struct-of-arrays engine
        (:mod:`repro.shard`) has no node objects to ask, so it derives
        roles from this band structure — keeping the mapping here makes
        both engines answer "who is node i" from one definition.
        """
        if node_id < n_byzantine:
            return cls.BYZANTINE
        if node_id < n_byzantine + n_trusted:
            return cls.TRUSTED
        return cls.HONEST


class NodeBase:
    """Base class for all simulated nodes."""

    def __init__(self, node_id: int, kind: NodeKind):
        self.node_id = node_id
        self.kind = kind
        self.alive = True
        #: Optional instrumentation hub (see :mod:`repro.telemetry`), set by
        #: ``wire_telemetry`` or by the engine for churn arrivals.
        self.telemetry: Optional["Telemetry"] = None

    # -- telemetry -----------------------------------------------------------

    def _profiled(self, name: str) -> ContextManager[None]:
        """Opt-in wall-clock timer for a hot path (no-op without telemetry)."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.timer(name)

    # -- active phase -------------------------------------------------------

    def begin_round(self, ctx: "RoundContext") -> None:
        """Reset per-round state.  Default: nothing."""

    def gossip(self, ctx: "RoundContext") -> None:
        """Emit pushes and run pull sessions for this round."""
        raise NotImplementedError

    def end_round(self, ctx: "RoundContext") -> None:
        """Integrate the round's received information.  Default: nothing."""

    # -- passive phase --------------------------------------------------------

    def on_push(self, sender_id: int) -> None:
        """A push from ``sender_id`` arrived this round.  Default: ignore."""

    def handle_request(self, message: Message) -> Optional[Message]:
        """Answer a synchronous request; ``None`` means no answer (drop)."""
        raise NotImplementedError

    # -- introspection (used by metrics and bootstrapping) ---------------------

    def view_ids(self) -> List[int]:
        """The node's current dynamic view (IDs, possibly with duplicates)."""
        raise NotImplementedError

    def known_ids(self) -> List[int]:
        """Every distinct ID this node has ever learned (discovery metric)."""
        raise NotImplementedError

    def seed_view(self, ids: List[int]) -> None:
        """Install the bootstrap view (uniform sample of global membership)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.node_id} kind={self.kind.value}>"
