"""Message transport between simulated nodes.

The network delivers pushes (fire-and-forget) and runs synchronous
request-response sessions (pull, auth, trusted swap).  It models:

* message loss (``loss_rate``), applied independently per message;
* node failure (messages to dead nodes are dropped);
* injected faults — an installed fault hook (see
  :class:`repro.faults.injector.FaultInjector`) is consulted per message and
  per direction, which is how partitions, eclipse cuts, per-link loss
  overrides, loss bursts and omission nodes are realised;
* optional transport encryption — the paper encrypts *all* pairwise
  communication with symmetric keys against an eavesdropping adversary
  (§III-B).  When enabled, every payload is serialized and AES-CTR-encrypted
  under a per-pair key.  With :mod:`repro.perf` fast paths on (the default),
  the per-pair block cipher is cached and the CTR involution lets one
  keystream serve both wire directions, which is what makes encrypted
  paper-scale runs feasible.

All traffic is counted — total and per round.  Per-round tallies are
applied eagerly, message by message: a lazy flush would leave the shared
:class:`NetworkStats` object internally inconsistent for any holder of the
``stats`` reference (totals eager, per-round Counters stale) and risks
misattributing a round's tail to its successor.  Counter increments keyed
by a small int are cheap enough for the hot path.
"""

from __future__ import annotations

import pickle
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.crypto.aes import AES128
from repro.crypto.ctr import AesCtr
from repro.crypto.hashing import hkdf
from repro.perf.config import STATE as _PERF_STATE
from repro.sim.messages import Message
from repro.sim.node import NodeBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry
    from repro.telemetry.registry import Counter as MetricCounter

__all__ = ["Network", "NetworkStats", "FaultHook"]

#: Per-message injection gate: ``(src, dst, round_number)`` → truthy to drop.
FaultHook = Callable[[int, int, int], object]


@dataclass
class NetworkStats:
    """Counters over the lifetime of a simulation."""

    pushes_sent: int = 0
    pushes_delivered: int = 0
    requests_sent: int = 0
    replies_delivered: int = 0
    messages_lost: int = 0
    bytes_encrypted: int = 0
    per_round_pushes: Counter = field(default_factory=Counter)
    per_round_requests: Counter = field(default_factory=Counter)
    per_round_losses: Counter = field(default_factory=Counter)


class Network:
    """Round-scoped transport over a registry of nodes."""

    def __init__(
        self,
        rng: random.Random,
        loss_rate: float = 0.0,
        encrypt: bool = False,
        transport_secret: bytes = b"\x00" * 16,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self._nodes: Dict[int, NodeBase] = {}
        self._rng = rng
        self._loss_rate = loss_rate
        self._encrypt = encrypt
        self._transport_secret = transport_secret
        self._pair_keys: Dict[Tuple[int, int], bytes] = {}
        self._pair_ciphers: Dict[Tuple[int, int], AES128] = {}
        # Group-key-epoch salt (see repro.membership): b"" reproduces the
        # legacy pair-key derivation byte for byte.
        self._pair_salt = b""
        self._nonce_counter = 0
        self._fault_hook: Optional[FaultHook] = None
        self._stats = NetworkStats()
        self._current_round = 0
        self.telemetry: Optional["Telemetry"] = None
        # Cached telemetry handles; None / False when no hub is wired, so
        # the un-instrumented hot path pays one attribute test per message.
        self._trace_messages = False
        self._ctr_pushes_sent: Optional["MetricCounter"] = None
        self._ctr_pushes_delivered: Optional["MetricCounter"] = None
        self._ctr_messages_lost: Optional["MetricCounter"] = None
        self._ctr_requests_sent: Dict[str, "MetricCounter"] = {}
        self._ctr_replies_delivered: Dict[str, "MetricCounter"] = {}

    # -- snapshot support ------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Pickle the network with the per-pair block-cipher cache dropped.

        The cipher cache is a pure memo over ``_pair_keys`` (each entry is
        re-derived on demand from the kept key), so dropping it shrinks
        snapshots without changing a single observable byte of a resumed
        run.  Tallies are eager, so the serialized :class:`NetworkStats`
        is exactly what a reader of :attr:`stats` sees.
        """
        state = dict(self.__dict__)
        state["_pair_ciphers"] = {}
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Mirror traffic counters (and per-message events) into a hub."""
        self.telemetry = telemetry
        self._ctr_requests_sent = {}
        self._ctr_replies_delivered = {}
        if telemetry is None:
            self._trace_messages = False
            self._ctr_pushes_sent = None
            self._ctr_pushes_delivered = None
            self._ctr_messages_lost = None
        else:
            self._trace_messages = telemetry.config.trace_messages
            self._ctr_pushes_sent = telemetry.counter("network.pushes_sent")
            self._ctr_pushes_delivered = telemetry.counter("network.pushes_delivered")
            self._ctr_messages_lost = telemetry.counter("network.messages_lost")

    # -- statistics ------------------------------------------------------------

    @property
    def stats(self) -> NetworkStats:
        """Lifetime counters, always consistent — tallies apply eagerly,
        so a reference held across messages or a round boundary never sees
        totals ahead of the per-round Counters."""
        return self._stats

    @property
    def current_round(self) -> int:
        return self._current_round

    @current_round.setter
    def current_round(self, round_number: int) -> None:
        self._current_round = round_number

    # -- topology --------------------------------------------------------------

    def register(self, node: NodeBase) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def unregister(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)
        # Departed nodes never talk again; dropping their pair keys keeps
        # long churny encrypted runs from accumulating dead key material.
        stale = [pair for pair in self._pair_keys if node_id in pair]
        for pair in stale:
            del self._pair_keys[pair]
            self._pair_ciphers.pop(pair, None)

    def node(self, node_id: int) -> Optional[NodeBase]:
        return self._nodes.get(node_id)

    def is_reachable(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    # -- fault injection -------------------------------------------------------

    def install_fault_hook(self, hook: Optional[FaultHook]) -> None:
        """Install (or clear, with ``None``) the per-message injection gate."""
        self._fault_hook = hook

    def _fault_dropped(self, src: int, dst: int) -> bool:
        return self._fault_hook is not None and bool(
            self._fault_hook(src, dst, self._current_round)
        )

    # -- encryption ------------------------------------------------------------

    def rekey_pairs(self, salt: bytes) -> None:
        """Re-derive every per-pair transport key under a new salt.

        Called on a group-key-epoch rotation: both memo layers (the derived
        keys *and* the expanded cipher contexts built from them) are
        invalidated, so no message is ever protected by key material tied
        to a retired epoch.
        """
        self._pair_salt = salt
        self._pair_keys.clear()
        self._pair_ciphers.clear()

    def _pair_key(self, a: int, b: int) -> bytes:
        pair = (a, b) if a <= b else (b, a)
        key = self._pair_keys.get(pair)
        if key is None:
            info = (
                b"pair"
                + pair[0].to_bytes(8, "big")
                + pair[1].to_bytes(8, "big")
                + self._pair_salt
            )
            key = hkdf(self._transport_secret, info, length=16)
            self._pair_keys[pair] = key
        return key

    def _pair_cipher(self, a: int, b: int) -> AES128:
        """The pair's block cipher, expanded once and re-nonced per message."""
        pair = (a, b) if a <= b else (b, a)
        cipher = self._pair_ciphers.get(pair)
        if cipher is None:
            cipher = AES128(self._pair_key(a, b))
            self._pair_ciphers[pair] = cipher
        return cipher

    def _through_wire(self, src: int, dst: int, message: Message) -> Message:
        """Simulate serialization + encryption + decryption of a payload."""
        if not self._encrypt:
            return message
        self._nonce_counter += 1
        nonce = self._nonce_counter.to_bytes(8, "big")
        plaintext = pickle.dumps(message)
        if _PERF_STATE.enabled:
            stream = AesCtr.from_cipher(self._pair_cipher(src, dst), nonce)
            keystream = stream.keystream(len(plaintext))
            ks_int = int.from_bytes(keystream, "big")
            ciphertext = (int.from_bytes(plaintext, "big") ^ ks_int).to_bytes(
                len(plaintext), "big"
            )
            self._stats.bytes_encrypted += len(ciphertext)
            # CTR is an involution, so the decrypt half of the round trip
            # reuses the keystream instead of re-running AES over it.
            decrypted = (int.from_bytes(ciphertext, "big") ^ ks_int).to_bytes(
                len(ciphertext), "big"
            )
            return pickle.loads(decrypted)
        key = self._pair_key(src, dst)
        ciphertext = AesCtr(key, nonce).encrypt(plaintext)
        self._stats.bytes_encrypted += len(ciphertext)
        decrypted = AesCtr(key, nonce).decrypt(ciphertext)
        return pickle.loads(decrypted)

    # -- delivery ------------------------------------------------------------

    def _lost(self) -> bool:
        return self._loss_rate > 0.0 and self._rng.random() < self._loss_rate

    def _count_loss(self) -> None:
        self._stats.messages_lost += 1
        self._stats.per_round_losses[self._current_round] += 1
        if self._ctr_messages_lost is not None:
            self._ctr_messages_lost.inc()

    def _emit_message(self, name: str, src: int, dst: int, delivered: bool,
                      **fields: object) -> None:
        # Callers guard on self._trace_messages; kept tolerant for direct use.
        telemetry = self.telemetry
        if telemetry is not None and telemetry.config.trace_messages:
            telemetry.event(name, node=src, dst=dst, delivered=delivered, **fields)

    def send_push(self, src: int, dst: int) -> bool:
        """Deliver a push from ``src`` to ``dst``; returns delivery success."""
        stats = self._stats
        stats.pushes_sent += 1
        stats.per_round_pushes[self._current_round] += 1
        if self._ctr_pushes_sent is not None:
            self._ctr_pushes_sent.inc()
        if self._fault_dropped(src, dst) or self._lost() or not self.is_reachable(dst):
            self._count_loss()
            if self._trace_messages:
                self._emit_message("net.push", src, dst, delivered=False)
            return False
        self._nodes[dst].on_push(src)
        stats.pushes_delivered += 1
        if self._ctr_pushes_delivered is not None:
            self._ctr_pushes_delivered.inc()
        if self._trace_messages:
            self._emit_message("net.push", src, dst, delivered=True)
        return True

    def _request_counter(
        self, cache: Dict[str, "MetricCounter"], name: str, kind: str
    ) -> "MetricCounter":
        counter = cache.get(kind)
        if counter is None:
            counter = self.telemetry.counter(name, kind=kind)
            cache[kind] = counter
        return counter

    def request(self, src: int, dst: int, message: Message) -> Optional[Message]:
        """Synchronous request-response; ``None`` on loss or dead peer."""
        stats = self._stats
        stats.requests_sent += 1
        stats.per_round_requests[self._current_round] += 1
        kind = type(message).__name__
        instrumented = self.telemetry is not None
        if instrumented:
            self._request_counter(
                self._ctr_requests_sent, "network.requests_sent", kind
            ).inc()
        if self._fault_dropped(src, dst) or self._lost() or not self.is_reachable(dst):
            self._count_loss()
            if self._trace_messages:
                self._emit_message("net.request", src, dst, delivered=False,
                                   message=kind)
            return None
        delivered = self._through_wire(src, dst, message)
        reply = self._nodes[dst].handle_request(delivered)
        if reply is None:
            if self._trace_messages:
                self._emit_message("net.request", src, dst, delivered=True,
                                   message=kind, answered=False)
            return None
        if self._fault_dropped(dst, src) or self._lost():
            self._count_loss()
            if self._trace_messages:
                self._emit_message("net.request", src, dst, delivered=True,
                                   message=kind, answered=True,
                                   reply_delivered=False)
            return None
        stats.replies_delivered += 1
        if instrumented:
            self._request_counter(
                self._ctr_replies_delivered, "network.replies_delivered", kind
            ).inc()
        if self._trace_messages:
            self._emit_message("net.request", src, dst, delivered=True,
                               message=kind, answered=True, reply_delivered=True)
        return self._through_wire(dst, src, reply)
