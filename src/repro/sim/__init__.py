"""Round-based distributed-system simulator.

Substrate replacing the paper's Grid'5000 deployment: a deterministic,
seeded, round-synchronous engine with message transport (loss, optional
encryption), bootstrap, churn models, and metric observers.
"""

from repro.sim.bootstrap import UniformBootstrap
from repro.sim.churn import (
    CatastrophicFailure,
    ChurnEvent,
    ChurnModel,
    NoChurn,
    UniformChurn,
)
from repro.sim.engine import FaultController, Observer, RoundContext, Simulation
from repro.sim.messages import (
    AuthChallenge,
    AuthConfirm,
    AuthResponse,
    AuthResult,
    Message,
    PullReply,
    PullRequest,
    Push,
    TrustedSwapReply,
    TrustedSwapRequest,
)
from repro.sim.network import Network, NetworkStats
from repro.sim.node import NodeBase, NodeKind
from repro.sim.observers import DiscoveryObserver, RoundRecord, ViewTraceObserver

__all__ = [
    "UniformBootstrap",
    "CatastrophicFailure",
    "ChurnEvent",
    "ChurnModel",
    "NoChurn",
    "UniformChurn",
    "FaultController",
    "Observer",
    "RoundContext",
    "Simulation",
    "AuthChallenge",
    "AuthConfirm",
    "AuthResponse",
    "AuthResult",
    "Message",
    "PullReply",
    "PullRequest",
    "Push",
    "TrustedSwapReply",
    "TrustedSwapRequest",
    "Network",
    "NetworkStats",
    "NodeBase",
    "NodeKind",
    "DiscoveryObserver",
    "RoundRecord",
    "ViewTraceObserver",
]
