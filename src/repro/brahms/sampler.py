"""Brahms sampling component (§II, Fig. 2).

A :class:`Sampler` holds one hash function drawn from a min-wise independent
family and retains, over the stream of all IDs it has ever observed, the ID
with the smallest hash.  Because the hash is (approximately) min-wise
independent, every distinct element of the stream is equally likely to be
retained — so the sample converges to a uniform draw over everything the
node has ever heard of, which is exactly Brahms' self-healing anchor.

A :class:`SamplerGroup` bundles l2 independent samplers and implements the
liveness validation: a sampler whose retained ID stops responding is reset
so departed nodes do not anchor samples forever.

The group batch-evaluates the linear min-wise family with numpy (the stream
× samplers product dominates simulation time); the semantics are identical
to feeding each ID through each :class:`Sampler` in order, because taking a
running minimum commutes with batching.  The cryptographic hash variant
falls back to the per-element path.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.crypto.minwise import (
    MERSENNE_PRIME_31,
    MinWiseFamily,
    MinWiseHash,
    _SCRAMBLE_MULTIPLIER,
    _SCRAMBLE_OFFSET,
)

__all__ = ["Sampler", "SamplerGroup"]


class Sampler:
    """One min-wise sampler: ``next`` consumes an ID, ``sample`` reads it."""

    def __init__(self, hash_function: Callable[[int], int]):
        self._hash = hash_function
        self._current_id: Optional[int] = None
        self._current_hash: Optional[int] = None

    def next(self, candidate: int) -> None:
        """Feed one stream element."""
        h = self._hash(candidate)
        if self._current_hash is None or h < self._current_hash:
            self._current_hash = h
            self._current_id = candidate

    def sample(self) -> Optional[int]:
        """The retained ID, or ``None`` if the stream was empty so far."""
        return self._current_id

    def reset(self, hash_function: Callable[[int], int]) -> None:
        """Re-initialize with a fresh hash function (after invalidation)."""
        self._hash = hash_function
        self._current_id = None
        self._current_hash = None


class SamplerGroup:
    """l2 independent samplers plus the validation policy."""

    def __init__(self, size: int, family: MinWiseFamily):
        if size <= 0:
            raise ValueError("sampler group size must be positive")
        self._family = family
        self._size = size
        if family.cryptographic:
            self._samplers: Optional[List[Sampler]] = [
                Sampler(family.draw()) for _ in range(size)
            ]
        else:
            self._samplers = None
            functions = [family.draw() for _ in range(size)]
            self._a = np.array([f.a for f in functions], dtype=np.int64)
            self._b = np.array([f.b for f in functions], dtype=np.int64)
            self._p = np.int64(MERSENNE_PRIME_31)
            # Sentinel: every real hash is < p, so p means "empty".
            self._current_hash = np.full(size, MERSENNE_PRIME_31, dtype=np.int64)
            self._current_id = np.full(size, -1, dtype=np.int64)

    def __len__(self) -> int:
        return self._size

    # -- streaming -----------------------------------------------------------

    def update(self, ids: Iterable[int]) -> None:
        """Stream a batch of IDs through every sampler."""
        if self._samplers is not None:
            for candidate in ids:
                for sampler in self._samplers:
                    sampler.next(candidate)
            return
        batch = np.fromiter(ids, dtype=np.int64)
        if batch.size == 0:
            return
        # Same pipeline as MinWiseHash.__call__: 64-bit scramble (uint64
        # wrap-around), reduce mod p, then the per-sampler linear map.
        scrambled = (
            batch.astype(np.uint64) * np.uint64(_SCRAMBLE_MULTIPLIER)
            + np.uint64(_SCRAMBLE_OFFSET)
        )
        reduced = (scrambled % np.uint64(MERSENNE_PRIME_31)).astype(np.int64)
        # (samplers × batch) hashes in one shot; running-min over the whole
        # history equals min(previous minimum, batch minimum).
        hashes = (self._a[:, None] * reduced[None, :] + self._b[:, None]) % self._p
        best_index = hashes.argmin(axis=1)
        rows = np.arange(self._size)
        best_hash = hashes[rows, best_index]
        improved = best_hash < self._current_hash
        self._current_hash[improved] = best_hash[improved]
        self._current_id[improved] = batch[best_index[improved]]

    # -- reading -------------------------------------------------------------

    def sample_list(self) -> List[int]:
        """Current non-empty samples (the sample list S)."""
        if self._samplers is not None:
            return [s.sample() for s in self._samplers if s.sample() is not None]
        return [int(value) for value in self._current_id if value >= 0]

    def random_samples(self, count: int, rng: random.Random) -> List[int]:
        """``count`` IDs drawn uniformly from S (with replacement, as the
        history-sample step draws independent entries)."""
        current = self.sample_list()
        if not current:
            return []
        return [rng.choice(current) for _ in range(count)]

    # -- validation / invalidation -----------------------------------------------

    def _reset_index(self, index: int) -> None:
        fresh = self._family.draw()
        assert isinstance(fresh, MinWiseHash)
        self._a[index] = fresh.a
        self._b[index] = fresh.b
        self._current_hash[index] = MERSENNE_PRIME_31
        self._current_id[index] = -1

    def validate(self, is_alive: Callable[[int], bool]) -> int:
        """Reset every sampler whose retained ID fails the liveness probe.

        Returns the number of samplers reset.  In the paper's deployment the
        probe is a ping; in the simulator it is reachability of the node.
        """
        reset_count = 0
        if self._samplers is not None:
            for sampler in self._samplers:
                current = sampler.sample()
                if current is not None and not is_alive(current):
                    sampler.reset(self._family.draw())
                    reset_count += 1
            return reset_count
        for index in range(self._size):
            current = int(self._current_id[index])
            if current >= 0 and not is_alive(current):
                self._reset_index(index)
                reset_count += 1
        return reset_count

    def invalidate_id(self, node_id: int) -> int:
        """Reset samplers currently holding ``node_id`` (targeted removal)."""
        reset_count = 0
        if self._samplers is not None:
            for sampler in self._samplers:
                if sampler.sample() == node_id:
                    sampler.reset(self._family.draw())
                    reset_count += 1
            return reset_count
        for index in range(self._size):
            if int(self._current_id[index]) == node_id:
                self._reset_index(index)
                reset_count += 1
        return reset_count
