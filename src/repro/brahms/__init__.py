"""Brahms: Byzantine-resilient random membership sampling (Bortnikov et al.).

The substrate protocol RAPTEE builds on.  See :mod:`repro.brahms.node` for
the round structure and the mapping of the four defense mechanisms to code.
"""

from repro.brahms.config import BrahmsConfig
from repro.brahms.countmin import CountMinSketch, StreamUnbiaser
from repro.brahms.limiter import ComputationalPuzzle, PushRateLimiter
from repro.brahms.node import BrahmsNode, PulledBatch
from repro.brahms.sampler import Sampler, SamplerGroup

__all__ = [
    "BrahmsConfig",
    "CountMinSketch",
    "StreamUnbiaser",
    "ComputationalPuzzle",
    "PushRateLimiter",
    "BrahmsNode",
    "PulledBatch",
    "Sampler",
    "SamplerGroup",
]
