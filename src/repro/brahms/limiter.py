"""Push rate limiting (Brahms defense i).

Brahms *assumes* a mechanism bounding each identity's push rate —
"for example, via computational challenges like Merkle's puzzles, virtual
currency, etc." (§II) — and RAPTEE inherits the assumption to rule out
Sybil and flooding attacks (§III-B).  This module provides both:

* :class:`PushRateLimiter` — the enforcement point: a per-sender, per-round
  budget; honest nodes never exceed it, and the adversary coordinator's
  total push volume is bounded by (number of Byzantine identities) × budget,
  which is what makes the balanced attack the adversary's optimum.
* :class:`ComputationalPuzzle` — a concrete proof-of-work instantiation of
  the assumed challenge mechanism (hash-preimage with difficulty), used in
  the examples and tests rather than on the simulation hot path.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.crypto.hashing import sha256

__all__ = ["PushRateLimiter", "ComputationalPuzzle"]


class PushRateLimiter:
    """Per-(sender, round) push budget."""

    def __init__(self, per_round_limit: int):
        if per_round_limit <= 0:
            raise ValueError("per_round_limit must be positive")
        self.per_round_limit = per_round_limit
        self._counts: Dict[Tuple[int, int], int] = {}
        self._current_round = 0

    def start_round(self, round_number: int) -> None:
        """Advance to a new round, discarding stale counters."""
        self._current_round = round_number
        self._counts = {
            key: count for key, count in self._counts.items()
            if key[1] >= round_number
        }

    def allow(self, sender_id: int) -> bool:
        """Consume one push slot for ``sender_id``; False when exhausted."""
        key = (sender_id, self._current_round)
        used = self._counts.get(key, 0)
        if used >= self.per_round_limit:
            return False
        self._counts[key] = used + 1
        return True

    def remaining(self, sender_id: int) -> int:
        used = self._counts.get((sender_id, self._current_round), 0)
        return max(0, self.per_round_limit - used)


class ComputationalPuzzle:
    """Hash-preimage proof-of-work: find a nonce making the hash of
    (challenge || nonce) start with ``difficulty_bits`` zero bits.

    The expected work is 2^difficulty_bits hash evaluations, which is what
    prices pushes and throttles Sybil identity creation.
    """

    def __init__(self, difficulty_bits: int):
        if not 0 < difficulty_bits <= 32:
            raise ValueError("difficulty_bits must be in (0, 32]")
        self.difficulty_bits = difficulty_bits

    def _leading_zero_bits(self, digest: bytes) -> int:
        bits = 0
        for byte in digest:
            if byte == 0:
                bits += 8
                continue
            for shift in range(7, -1, -1):
                if byte >> shift & 1:
                    return bits
                bits += 1
        return bits

    def solve(self, challenge: bytes, max_attempts: int = 1 << 24) -> int:
        """Find a valid nonce; raises RuntimeError if none within the cap."""
        for nonce in range(max_attempts):
            if self.verify(challenge, nonce):
                return nonce
        raise RuntimeError("puzzle not solved within the attempt cap")

    def verify(self, challenge: bytes, nonce: int) -> bool:
        digest = sha256(challenge + nonce.to_bytes(8, "big"))
        return self._leading_zero_bits(digest) >= self.difficulty_bits
