"""Count-min-sketch stream unbiasing (the paper's stated future work).

Related work (§VIII) points at Anceaume et al., who "employ count-min
sketches to unbias a biased stream of identifiers", and the paper notes
that "adopting a similar technique in RAPTEE could constitute interesting
future work".  This module implements that extension.

Idea: the ID stream a node receives is occurrence-biased — the adversary
advertises its identities far more often than honest nodes advertise
theirs.  Brahms' min-wise samplers are occurrence-*insensitive* by design,
but the dynamic-view renewal is not: the β·l1 slots are drawn from the raw
pulled multiset, so over-advertised IDs win view slots proportionally to
how often they appear.  A count-min sketch estimates each ID's observed
frequency in sub-linear memory; dividing an ID's selection weight by its
estimated frequency flattens the distribution back toward uniform-over-
distinct, removing the adversary's over-advertisement edge without keeping
per-ID exact counters.

:class:`StreamUnbiaser` packages the sketch into the exact operation the
view renewal needs: a frequency-weighted sub-sampling of a batch of IDs.
RAPTEE nodes enable it with ``RapteeConfig(sketch_unbias_enabled=True)``;
the ablation bench ``benchmarks/test_ablation_countmin.py`` quantifies the
effect.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.crypto.minwise import scramble64
from repro.perf import kernels as _kernels
from repro.perf.config import resolve_use_numpy

__all__ = ["CountMinSketch", "StreamUnbiaser"]


class CountMinSketch:
    """Classic count-min sketch over integer IDs.

    ``depth`` independent rows of ``width`` counters; each update hashes the
    ID into one counter per row; the estimate is the row-minimum, which
    upper-bounds the true count and overestimates by at most εN with
    probability 1−δ for width = ⌈e/ε⌉, depth = ⌈ln 1/δ⌉.

    ``use_numpy`` selects the counter backend: ``None`` (default) resolves
    to numpy when it is installed and :mod:`repro.perf` fast paths are on.
    Both backends compute identical integers — same hashes, same counters,
    same estimates (``tests/test_perf_kernels.py`` proves it property-wise);
    the numpy one batches whole-view updates into vector adds.
    """

    def __init__(self, width: int, depth: int, rng: random.Random,
                 use_numpy: Optional[bool] = None):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.use_numpy = resolve_use_numpy(use_numpy, _kernels.HAVE_NUMPY)
        if self.use_numpy:
            self._tables = _kernels.countmin_new_tables(depth, width)
        else:
            self._tables = [[0] * width for _ in range(depth)]
        # Per-row salts drive independent hash functions (scramble + salt).
        self._salts = [rng.getrandbits(64) for _ in range(depth)]
        self.total = 0

    def _cells(self, item: int):
        for row, salt in enumerate(self._salts):
            yield row, scramble64(item ^ salt) % self.width

    def update(self, item: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``item``."""
        if count <= 0:
            raise ValueError("count must be positive")
        if self.use_numpy:
            for row, column in self._cells(item):
                self._tables[row, column] += count
        else:
            for row, column in self._cells(item):
                self._tables[row][column] += count
        self.total += count

    def update_batch(self, items: Iterable[int]) -> None:
        if self.use_numpy:
            batch = list(items)
            if batch:
                _kernels.countmin_update_batch(self._tables, self._salts, batch)
                self.total += len(batch)
            return
        for item in items:
            self.update(item)

    def estimate(self, item: int) -> int:
        """Upper-bound estimate of how often ``item`` was recorded."""
        if self.use_numpy:
            return _kernels.countmin_estimate(self._tables, self._salts, item)
        return min(self._tables[row][column] for row, column in self._cells(item))

    def estimate_batch(self, items: Sequence[int]) -> List[int]:
        """Estimates for a batch of items, in input order."""
        if self.use_numpy and items:
            return _kernels.countmin_estimate_batch(
                self._tables, self._salts, list(items)
            )
        return [self.estimate(item) for item in items]

    def decay(self, factor: float = 0.5) -> None:
        """Age the sketch (halve counters): keeps the bias estimate focused
        on the recent stream in a long-running node.

        Every counter becomes the *exact* ⌊value · factor⌋ — the factor is
        expanded to its dyadic rational num/2**shift and applied in integer
        arithmetic, so large counters never pick up float64 rounding (both
        backends share the decomposition and agree bit for bit).
        """
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        num, shift = _kernels.decay_ratio(factor)
        if self.use_numpy:
            _kernels.countmin_decay(self._tables, factor)
        else:
            for table in self._tables:
                for index, value in enumerate(table):
                    table[index] = _kernels.decay_value(value, num, shift)
        self.total = _kernels.decay_value(self.total, num, shift)


class StreamUnbiaser:
    """Frequency-weighted sub-sampling of an ID batch.

    Keeps each occurrence of ID *x* with probability ``min_count / ĉ(x)``,
    where ĉ is the sketch estimate and ``min_count`` the smallest estimate
    in the batch — so the least-advertised ID keeps all of its occurrences
    while an ID advertised 10× as often keeps ~1/10 of them.  Applied to
    the pulled-ID pool before the β·l1 view renewal, this neutralizes
    over-advertisement while leaving uniform streams untouched.
    """

    def __init__(self, rng: random.Random, width: int = 256, depth: int = 4,
                 decay_every: int = 50, use_numpy: Optional[bool] = None):
        self._sketch = CountMinSketch(width, depth, rng, use_numpy=use_numpy)
        self._rng = rng
        self._decay_every = decay_every
        self._batches_seen = 0

    @property
    def sketch(self) -> CountMinSketch:
        return self._sketch

    def observe(self, ids: Iterable[int]) -> None:
        """Feed a batch of observed IDs into the frequency estimate."""
        self._sketch.update_batch(ids)
        self._batches_seen += 1
        if self._decay_every and self._batches_seen % self._decay_every == 0:
            self._sketch.decay()

    def unbias(self, ids: Sequence[int]) -> List[int]:
        """Return a frequency-flattened sub-sample of ``ids``."""
        if not ids:
            return []
        distinct = sorted(set(ids))
        estimates = {
            item: max(1, estimate)
            for item, estimate in zip(distinct, self._sketch.estimate_batch(distinct))
        }
        floor = min(estimates.values())
        kept = [
            item for item in ids
            if self._rng.random() < floor / estimates[item]
        ]
        # Never return an empty pool from a non-empty one: keep the single
        # least-advertised occurrence as a fallback.
        if not kept:
            kept = [min(ids, key=lambda item: estimates[item])]
        return kept
