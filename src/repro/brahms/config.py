"""Brahms protocol parameters.

Defaults follow the original paper's recommendation, also used by RAPTEE's
evaluation (§II): α = β = 0.4, γ = 0.2.  The view size l1 and sample size l2
scale with the system size; the RAPTEE paper uses l1 = 200 at N = 10,000.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BrahmsConfig"]


@dataclass(frozen=True)
class BrahmsConfig:
    """Parameters of one Brahms instance.

    Attributes:
        view_size: l1, the dynamic-view size.
        sample_size: l2, the number of min-wise samplers.
        alpha: fraction of the renewed view drawn from received pushes.
        beta: fraction drawn from pull answers.
        gamma: fraction drawn from the history sample (the sample list S).
        blocking_enabled: Brahms defense (ii) — refuse the view update in a
            round where more pushes than the expected α·l1 arrived.
        validation_period: every that many rounds, samplers probe their
            current sample for liveness and reset if it is dead (0 disables).
        push_limit: per-node per-round push budget enforced by the
            rate-limiting mechanism (defense i).  ``None`` derives the
            natural protocol value α·l1.
    """

    view_size: int = 20
    sample_size: int = 10
    alpha: float = 0.4
    beta: float = 0.4
    gamma: float = 0.2
    blocking_enabled: bool = True
    validation_period: int = 10
    push_limit: int = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.view_size <= 0:
            raise ValueError("view_size must be positive")
        if self.sample_size <= 0:
            raise ValueError("sample_size must be positive")
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if abs(self.alpha + self.beta + self.gamma - 1.0) > 1e-9:
            raise ValueError(
                f"alpha + beta + gamma must equal 1, got "
                f"{self.alpha + self.beta + self.gamma}"
            )
        if self.validation_period < 0:
            raise ValueError("validation_period must be non-negative")
        if self.push_limit is not None and self.push_limit <= 0:
            raise ValueError("push_limit must be positive when set")

    @property
    def alpha_count(self) -> int:
        """α·l1 (floored, min 1): pushes per round and push view slots.

        Flooring keeps the γ (history-sample) portion non-empty on the small
        views used in tests; at the paper's l1 = 200 the products are exact.
        """
        return max(1, math.floor(self.alpha * self.view_size))

    @property
    def beta_count(self) -> int:
        """β·l1 (floored, min 1): pull requests per round and pull slots."""
        return max(1, math.floor(self.beta * self.view_size))

    @property
    def gamma_count(self) -> int:
        """History-sample slots in the renewed view (l1 − α·l1 − β·l1)."""
        return max(0, self.view_size - self.alpha_count - self.beta_count)

    @property
    def effective_push_limit(self) -> int:
        """The rate-limiter budget: explicit, or the protocol's own α·l1."""
        return self.push_limit if self.push_limit is not None else self.alpha_count

    def scaled(self, n_nodes: int, view_ratio: float = 0.02) -> "BrahmsConfig":
        """Derive a config with the paper's view-size ratio for ``n_nodes``.

        The paper uses l1 = 200 at N = 10,000 (ratio 0.02) and l2 = l1/2
        is a common Brahms instantiation; both are clamped to at least 8/4
        so tiny test topologies keep meaningful α/β/γ splits.
        """
        view = max(8, int(round(n_nodes * view_ratio)))
        return BrahmsConfig(
            view_size=view,
            sample_size=max(4, view // 2),
            alpha=self.alpha,
            beta=self.beta,
            gamma=self.gamma,
            blocking_enabled=self.blocking_enabled,
            validation_period=self.validation_period,
            push_limit=self.push_limit,
        )
