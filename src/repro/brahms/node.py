"""The Brahms node (§II): push-pull gossip + min-wise sampling + defenses.

Per round, a Brahms node:

* sends its own ID to ⌈α·l1⌉ targets drawn (with repetitions, as in the
  original algorithm) from its dynamic view V;
* sends pull requests to ⌈β·l1⌉ targets drawn the same way and collects the
  returned views;
* at round end — unless the attack-detection rule blocks the update — renews
  V from α·l1 pushed IDs, β·l1 pulled IDs and γ·l1 history samples, and
  streams every received ID through its l2 samplers.

The defense mechanisms map to code as follows:

(i)   limited pushes       → :class:`repro.brahms.limiter.PushRateLimiter`
                             (honest nodes also never exceed α·l1 by design);
(ii)  attack detection     → the ``blocked`` predicate in :meth:`end_round`;
(iii) push/pull balancing  → the α/β split of the view renewal;
(iv)  history sampling     → the γ portion drawn from the sample list S.

Subclassing hooks (used by RAPTEE): ``_do_pull`` wraps one pull session and
``_effective_pulled_ids`` filters the pulled stream before it reaches the
samplers and the β slots — exactly the two points where RAPTEE grafts
mutual authentication, trusted exchanges, and Byzantine eviction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.brahms.config import BrahmsConfig
from repro.brahms.sampler import SamplerGroup
from repro.crypto.minwise import MinWiseFamily
from repro.sgx.cycles import CycleAccountant, PeerSamplingFunction
from repro.sim.engine import RoundContext
from repro.sim.messages import Message, PullReply, PullRequest
from repro.sim.node import NodeBase, NodeKind

__all__ = ["BrahmsNode", "PulledBatch"]


@dataclass
class PulledBatch:
    """IDs obtained from one pull (or trusted-exchange) session."""

    source: int
    ids: Tuple[int, ...]
    trusted_source: bool = False


class BrahmsNode(NodeBase):
    """A node executing Brahms."""

    def __init__(
        self,
        node_id: int,
        kind: NodeKind,
        config: BrahmsConfig,
        rng: random.Random,
        cycle_accountant: Optional[CycleAccountant] = None,
        cryptographic_samplers: bool = False,
    ):
        super().__init__(node_id, kind)
        self.config = config
        self.rng = rng
        self.cycles = cycle_accountant
        self.view: List[int] = []
        self.samplers = SamplerGroup(
            config.sample_size,
            MinWiseFamily(rng, cryptographic=cryptographic_samplers),
        )
        self.known: Set[int] = {node_id}
        self.blocked_rounds = 0
        # Per-round buffers.
        self._received_pushes: List[int] = []
        self._pulled: List[PulledBatch] = []

    # -- NodeBase introspection -------------------------------------------

    def view_ids(self) -> List[int]:
        return list(self.view)

    def known_ids(self) -> List[int]:
        return list(self.known)

    def seed_view(self, ids: List[int]) -> None:
        self.view = [peer for peer in ids if peer != self.node_id]
        self.known.update(self.view)

    # -- cycle accounting ----------------------------------------------------

    def _charge(self, function: str) -> None:
        if self.cycles is not None:
            self.cycles.charge(function, trusted=self.kind.runs_trusted_code)

    # -- active phase ----------------------------------------------------------

    def begin_round(self, ctx: RoundContext) -> None:
        self._received_pushes = []
        self._pulled = []

    def _select_targets(self, count: int) -> List[int]:
        """Draw ``count`` gossip partners from V, with repetitions (Brahms)."""
        if not self.view:
            return []
        return self.rng.choices(self.view, k=count)

    def gossip(self, ctx: RoundContext) -> None:
        for target in self._select_targets(self.config.alpha_count):
            if target == self.node_id:
                continue
            self._charge(PeerSamplingFunction.PUSH_MESSAGE)
            ctx.send_push(self.node_id, target)
        for target in self._select_targets(self.config.beta_count):
            if target == self.node_id:
                continue
            batch = self._do_pull(ctx, target)
            if batch is not None:
                self._pulled.append(batch)
                self.known.update(batch.ids)

    def _do_pull(self, ctx: RoundContext, target: int) -> Optional[PulledBatch]:
        """One pull session; RAPTEE overrides to run auth + trusted swap."""
        self._charge(PeerSamplingFunction.PULL_REQUEST)
        reply = ctx.request(self.node_id, target, PullRequest(self.node_id))
        if not isinstance(reply, PullReply):
            return None
        return PulledBatch(source=target, ids=reply.ids)

    # -- passive phase -----------------------------------------------------------

    def on_push(self, sender_id: int) -> None:
        self._received_pushes.append(sender_id)
        self.known.add(sender_id)

    def handle_request(self, message: Message) -> Optional[Message]:
        if isinstance(message, PullRequest):
            return PullReply(sender=self.node_id, ids=tuple(self.view))
        return None

    # -- round-end update ---------------------------------------------------------

    def _effective_pulled_ids(self) -> List[int]:
        """Pulled IDs that participate in sampling and view renewal.

        Plain Brahms uses everything; RAPTEE's trusted nodes evict here.
        """
        ids: List[int] = []
        for batch in self._pulled:
            ids.extend(batch.ids)
        return ids

    def end_round(self, ctx: RoundContext) -> None:
        config = self.config
        pushed = [peer for peer in self._received_pushes if peer != self.node_id]
        pulled = [
            peer for peer in self._effective_pulled_ids() if peer != self.node_id
        ]

        # Defense (ii): attack detection and blocking.  A node flooded with
        # more pushes than the protocol's expectation skips its view update.
        blocked = config.blocking_enabled and len(pushed) > config.alpha_count
        if blocked:
            self.blocked_rounds += 1

        # Sampling component: every received ID enters the sampler stream —
        # except the IDs a trusted node chose to evict (already filtered).
        # The timer covers the min-wise hashing the samplers run per ID.
        self._charge(PeerSamplingFunction.SAMPLE_LIST_COMPUTATION)
        with self._profiled("sampler.update"):
            self.samplers.update(pushed)
            self.samplers.update(pulled)

        # View renewal: requires non-blocked round with both flows present
        # (the pull condition is on *received answers*, so an evicting
        # trusted node still renews — with empty β slots if it evicted all).
        received_any_pull = any(batch.ids for batch in self._pulled)
        if not blocked and pushed and received_any_pull:
            self._charge(PeerSamplingFunction.DYNAMIC_VIEW_COMPUTATION)
            with self._profiled("view.merge"):
                self.view = self._renew_view(pushed, pulled)

        if (
            config.validation_period
            and ctx.round_number % config.validation_period == 0
        ):
            with self._profiled("sampler.validate"):
                self.samplers.validate(ctx.network.is_reachable)

        self._received_pushes = []
        self._pulled = []

    def _renew_view(self, pushed: List[int], pulled: List[int]) -> List[int]:
        """V ← rand(pushed, α·l1) ∪ rand(pulled, β·l1) ∪ rand(S, γ·l1)."""
        config = self.config
        new_view: List[int] = []

        unique_pushed = list(dict.fromkeys(pushed))
        if len(unique_pushed) <= config.alpha_count:
            new_view.extend(unique_pushed)
        else:
            new_view.extend(self.rng.sample(unique_pushed, config.alpha_count))

        if pulled:
            new_view.extend(self.rng.choices(pulled, k=config.beta_count))

        new_view.extend(self.samplers.random_samples(config.gamma_count, self.rng))
        return new_view
