"""Newscast (Tölgyesi & Jelasity 2009) as a framework instantiation.

Newscast is the (rand, push-pull, H=c, S=0) point: partners merge their
full views and keep the c freshest descriptors.  Healing dominates, which
makes Newscast extremely fast at flushing departed nodes at the price of a
less balanced in-degree distribution.
"""

from __future__ import annotations

import random

from repro.gossip.framework import GossipPssConfig, GossipPssNode
from repro.sim.node import NodeKind

__all__ = ["NewscastNode"]


class NewscastNode(GossipPssNode):
    """A node running Newscast."""

    def __init__(self, node_id: int, view_size: int, rng: random.Random,
                 kind: NodeKind = NodeKind.HONEST):
        super().__init__(node_id, GossipPssConfig.newscast(view_size), rng, kind)
