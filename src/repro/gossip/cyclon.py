"""Cyclon (Voulgaris et al. 2005) as a framework instantiation.

Cyclon's shuffle is the (tail, push-pull, H=0, S=c/2) point of the Jelasity
design space: the initiator contacts its oldest neighbour, they exchange
c/2 descriptors, and each keeps the other's links in place of its own —
which preserves the total number of links in the overlay and therefore
yields the balanced in-degree Cyclon is known for.
"""

from __future__ import annotations

import random

from repro.gossip.framework import GossipPssConfig, GossipPssNode
from repro.sim.node import NodeKind

__all__ = ["CyclonNode"]


class CyclonNode(GossipPssNode):
    """A node running Cyclon."""

    def __init__(self, node_id: int, view_size: int, rng: random.Random,
                 kind: NodeKind = NodeKind.HONEST):
        super().__init__(node_id, GossipPssConfig.cyclon(view_size), rng, kind)
