"""Aged partial view: the data structure of the gossip PSS framework.

Each entry is a (node ID, age) pair; age counts gossip cycles since the
entry's descriptor was created by the node it points to.  All framework
policies — oldest-peer selection, healing (drop oldest), swapping (drop
what was sent) — are expressed over this structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["ViewEntry", "PartialView"]


@dataclass(frozen=True)
class ViewEntry:
    """A link to ``node_id`` created ``age`` cycles ago."""

    node_id: int
    age: int

    def aged(self) -> "ViewEntry":
        return ViewEntry(self.node_id, self.age + 1)


class PartialView:
    """An ordered collection of unique-by-ID aged entries."""

    def __init__(self, capacity: int, entries: Optional[Iterable[ViewEntry]] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List[ViewEntry] = []
        if entries:
            for entry in entries:
                self.add(entry)

    # -- basics ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return any(entry.node_id == node_id for entry in self._entries)

    def entries(self) -> List[ViewEntry]:
        return list(self._entries)

    def ids(self) -> List[int]:
        return [entry.node_id for entry in self._entries]

    def add(self, entry: ViewEntry) -> None:
        """Insert, keeping the youngest descriptor on ID collision."""
        for index, existing in enumerate(self._entries):
            if existing.node_id == entry.node_id:
                if entry.age < existing.age:
                    self._entries[index] = entry
                return
        self._entries.append(entry)

    def remove_id(self, node_id: int) -> bool:
        for index, entry in enumerate(self._entries):
            if entry.node_id == node_id:
                del self._entries[index]
                return True
        return False

    # -- framework operations (Jelasity et al., TOCS 2007) -------------------

    def increase_ages(self) -> None:
        self._entries = [entry.aged() for entry in self._entries]

    def oldest_peer(self) -> Optional[int]:
        """Tail peer selection: the entry with maximal age."""
        if not self._entries:
            return None
        return max(self._entries, key=lambda entry: entry.age).node_id

    def random_peer(self, rng: random.Random) -> Optional[int]:
        if not self._entries:
            return None
        return rng.choice(self._entries).node_id

    def permute(self, rng: random.Random) -> None:
        rng.shuffle(self._entries)

    def move_oldest_to_end(self, count: int) -> None:
        """Move the ``count`` oldest entries to the end of the list (the
        framework's trick so that to-be-healed entries are never sent)."""
        if count <= 0 or not self._entries:
            return
        # Partition by index, not object identity: stable sort keeps the
        # original order among equal ages, and an entry object that appears
        # twice moves exactly as many copies as selected.
        order = sorted(
            range(len(self._entries)),
            key=lambda index: self._entries[index].age,
            reverse=True,
        )
        oldest = set(order[:count])
        kept = [e for i, e in enumerate(self._entries) if i not in oldest]
        moved = [e for i, e in enumerate(self._entries) if i in oldest]
        self._entries = kept + moved

    def head(self, count: int) -> List[ViewEntry]:
        return self._entries[:count]

    def select(
        self,
        buffer: List[ViewEntry],
        healer: int,
        swapper: int,
        sent_count: int,
        rng: random.Random,
    ) -> None:
        """The framework's ``view.select(c, H, S, buffer)`` method.

        Append the received buffer, deduplicate (youngest wins), then shrink
        back to capacity by removing, in order: up to ``healer`` oldest
        entries, up to ``swapper`` head entries (which are exactly the ones
        just sent, thanks to the permute/move/append discipline), and finally
        random entries.
        """
        merged = PartialView(self.capacity * 4)
        for entry in self._entries + buffer:
            merged.add(entry)
        entries = merged.entries()

        def surplus() -> int:
            return max(0, len(entries) - self.capacity)

        # Heal: drop the oldest.
        for _ in range(min(healer, surplus())):
            oldest = max(entries, key=lambda entry: entry.age)
            entries.remove(oldest)

        # Swap: drop from the head (what we sent this cycle).
        drop_head = min(swapper, sent_count, surplus())
        entries = entries[drop_head:]

        # Random removals down to capacity.
        while len(entries) > self.capacity:
            entries.pop(rng.randrange(len(entries)))

        self._entries = entries
