"""Secure Peer Sampling (Jesi, Montresor, van Steen, 2010) — related work.

The paper's §VIII baseline: each node runs a gossip PSS plus a *detection
mechanism* that identifies and blacklists maliciously-acting nodes.  The
detector targets hub attacks — an attacker whose identifiers appear in
exchanged buffers far more often than honest ones.  Each node keeps an
occurrence counter over the descriptors it receives; an ID whose observed
frequency exceeds ``detection_threshold`` times the average is locally
blacklisted: its entries are purged from the view and ignored in future
exchanges.

The RAPTEE paper's criticism — "this protocol remains, however, vulnerable
to rapid flooding attack as correct nodes cannot identify and blacklist
attackers before being overwhelmed" — is reproduced by the comparison bench
(``benchmarks/test_related_secure_ps.py``): a slow hub attacker is caught,
a fast flood is not.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import List, Optional, Set

from repro.gossip.framework import (
    GossipPssConfig,
    GossipPssNode,
    ViewExchangeReply,
    ViewExchangeRequest,
)
from repro.gossip.partial_view import ViewEntry
from repro.sim.messages import Message
from repro.sim.node import NodeKind

__all__ = ["SecurePsNode"]


class SecurePsNode(GossipPssNode):
    """A gossip-PSS node with Jesi et al.'s hub-detection blacklist."""

    def __init__(
        self,
        node_id: int,
        view_size: int,
        rng: random.Random,
        kind: NodeKind = NodeKind.HONEST,
        detection_threshold: float = 4.0,
        warmup_observations: int = 50,
    ):
        super().__init__(node_id, GossipPssConfig.cyclon(view_size), rng, kind)
        if detection_threshold <= 1.0:
            raise ValueError("detection_threshold must exceed 1")
        self.detection_threshold = detection_threshold
        self.warmup_observations = warmup_observations
        self._observed = Counter()
        self._observations = 0
        self.blacklist: Set[int] = set()

    # -- detection ---------------------------------------------------------

    def _record_and_filter(self, entries: List[ViewEntry]) -> List[ViewEntry]:
        """Update occurrence statistics, refresh the blacklist, and drop
        blacklisted descriptors from the received buffer."""
        for entry in entries:
            self._observed[entry.node_id] += 1
            self._observations += 1

        if self._observations >= self.warmup_observations and self._observed:
            average = self._observations / len(self._observed)
            for node_id, count in self._observed.items():
                if count > self.detection_threshold * average:
                    if node_id not in self.blacklist:
                        self.blacklist.add(node_id)
                        self.view.remove_id(node_id)

        return [entry for entry in entries if entry.node_id not in self.blacklist]

    # -- framework overrides with filtering ----------------------------------

    def gossip(self, ctx) -> None:
        peer = self._select_peer()
        if peer is None or peer in self.blacklist:
            self.view.increase_ages()
            return
        buffer = self._build_buffer()
        reply = ctx.request(
            self.node_id,
            peer,
            ViewExchangeRequest(sender=self.node_id, entries=tuple(buffer)),
        )
        if isinstance(reply, ViewExchangeReply):
            received = [
                entry for entry in reply.entries if entry.node_id != self.node_id
            ]
            received = self._record_and_filter(received)
            self.known.update(entry.node_id for entry in received)
            self.view.select(
                received,
                healer=self.config.healer,
                swapper=self.config.swapper,
                sent_count=len(buffer) - 1,
                rng=self.rng,
            )
        self.view.increase_ages()

    def handle_request(self, message: Message) -> Optional[Message]:
        if not isinstance(message, ViewExchangeRequest):
            return None
        if message.sender in self.blacklist:
            return None
        reply_entries = tuple(self._build_buffer())
        received = [
            entry for entry in message.entries if entry.node_id != self.node_id
        ]
        received = self._record_and_filter(received)
        self.known.update(entry.node_id for entry in received)
        self.view.select(
            received,
            healer=self.config.healer,
            swapper=self.config.swapper,
            sent_count=len(reply_entries) - 1 if reply_entries else 0,
            rng=self.rng,
        )
        return ViewExchangeReply(sender=self.node_id, entries=reply_entries)
