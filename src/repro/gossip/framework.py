"""The generic gossip-based peer-sampling framework (Jelasity et al. 2007).

One protocol = one point in the design space:

* ``peer_selection`` — "rand" (uniform from view) or "tail" (oldest entry);
* ``push_pull`` — whether the exchange is bidirectional (the paper's
  recommended mode and the only one RAPTEE's instantiation uses);
* ``healer`` H — how many of the oldest entries to prefer replacing;
* ``swapper`` S — how many of the sent entries to drop in favour of the
  received ones (shuffle semantics: a sent link is kept only by the
  partner).

The RAPTEE paper instantiates the framework with the Jelasity et al.
recommendations (§II): tail (oldest) peer selection, push-pull exchange of
half the view with self-insertion, and swap-favouring merge — exposed here
as :meth:`GossipPssConfig.raptee_instantiation`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.gossip.partial_view import PartialView, ViewEntry
from repro.sim.engine import RoundContext
from repro.sim.messages import Message
from repro.sim.node import NodeBase, NodeKind

__all__ = ["GossipPssConfig", "ViewExchangeRequest", "ViewExchangeReply", "GossipPssNode"]


@dataclass(frozen=True)
class ViewExchangeRequest(Message):
    """Active-thread buffer: descriptors offered by the initiator."""

    entries: tuple = ()


@dataclass(frozen=True)
class ViewExchangeReply(Message):
    """Passive-thread buffer returned in push-pull mode."""

    entries: tuple = ()


@dataclass(frozen=True)
class GossipPssConfig:
    """One instantiation of the framework design space."""

    view_size: int = 20
    healer: int = 0
    swapper: int = 10
    peer_selection: str = "tail"  # "tail" or "rand"
    push_pull: bool = True

    def __post_init__(self) -> None:
        if self.view_size <= 0:
            raise ValueError("view_size must be positive")
        if self.healer < 0 or self.swapper < 0:
            raise ValueError("healer and swapper must be non-negative")
        if self.healer + self.swapper > self.view_size:
            raise ValueError("H + S must not exceed the view size")
        if self.peer_selection not in ("tail", "rand"):
            raise ValueError("peer_selection must be 'tail' or 'rand'")

    @property
    def exchange_size(self) -> int:
        """Descriptors sent per exchange: c/2 (including the self entry)."""
        return max(1, self.view_size // 2)

    @classmethod
    def raptee_instantiation(cls, view_size: int) -> "GossipPssConfig":
        """The §II criteria: oldest-peer probing, half-view exchange with
        self-insertion, shuffling (swap) of all exchanged links."""
        half = max(1, view_size // 2)
        return cls(
            view_size=view_size,
            healer=0,
            swapper=half,
            peer_selection="tail",
            push_pull=True,
        )

    @classmethod
    def cyclon(cls, view_size: int) -> "GossipPssConfig":
        """Cyclon ≈ (tail, push-pull, H=0, S=c/2): pure shuffling."""
        return cls(view_size=view_size, healer=0, swapper=max(1, view_size // 2),
                   peer_selection="tail", push_pull=True)

    @classmethod
    def newscast(cls, view_size: int) -> "GossipPssConfig":
        """Newscast ≈ (rand, push-pull, H=c, S=0): aggressive healing."""
        return cls(view_size=view_size, healer=view_size, swapper=0,
                   peer_selection="rand", push_pull=True)


class GossipPssNode(NodeBase):
    """A node running one framework instantiation."""

    def __init__(
        self,
        node_id: int,
        config: GossipPssConfig,
        rng: random.Random,
        kind: NodeKind = NodeKind.HONEST,
    ):
        super().__init__(node_id, kind)
        self.config = config
        self.rng = rng
        self.view = PartialView(config.view_size)
        self.known = {node_id}

    # -- NodeBase introspection -------------------------------------------

    def view_ids(self) -> List[int]:
        return self.view.ids()

    def known_ids(self) -> List[int]:
        return list(self.known)

    def seed_view(self, ids: List[int]) -> None:
        for peer in ids:
            if peer != self.node_id:
                self.view.add(ViewEntry(peer, 0))
        self.known.update(self.view.ids())

    # -- framework active thread ----------------------------------------------

    def _select_peer(self) -> Optional[int]:
        if self.config.peer_selection == "tail":
            return self.view.oldest_peer()
        return self.view.random_peer(self.rng)

    def _build_buffer(self) -> List[ViewEntry]:
        """Permute, hide the H oldest at the tail, take c/2−1 plus self."""
        self.view.permute(self.rng)
        self.view.move_oldest_to_end(self.config.healer)
        buffer = [ViewEntry(self.node_id, 0)]
        buffer.extend(self.view.head(self.config.exchange_size - 1))
        return buffer

    def gossip(self, ctx: RoundContext) -> None:
        peer = self._select_peer()
        if peer is None:
            return
        buffer = self._build_buffer()
        reply = ctx.request(
            self.node_id,
            peer,
            ViewExchangeRequest(sender=self.node_id, entries=tuple(buffer)),
        )
        if isinstance(reply, ViewExchangeReply):
            received = [entry for entry in reply.entries if entry.node_id != self.node_id]
            self.known.update(entry.node_id for entry in received)
            self.view.select(
                received,
                healer=self.config.healer,
                swapper=self.config.swapper,
                sent_count=len(buffer) - 1,  # self entry is not in our view
                rng=self.rng,
            )
        self.view.increase_ages()

    # -- framework passive thread -----------------------------------------------

    def handle_request(self, message: Message) -> Optional[Message]:
        if not isinstance(message, ViewExchangeRequest):
            return None
        reply_entries: tuple = ()
        if self.config.push_pull:
            reply_entries = tuple(self._build_buffer())
        received = [
            entry for entry in message.entries if entry.node_id != self.node_id
        ]
        self.known.update(entry.node_id for entry in received)
        self.view.select(
            received,
            healer=self.config.healer,
            swapper=self.config.swapper,
            sent_count=len(reply_entries) - 1 if reply_entries else 0,
            rng=self.rng,
        )
        return ViewExchangeReply(sender=self.node_id, entries=reply_entries)
