"""Gossip-based peer-sampling framework (Jelasity et al., TOCS 2007).

The generic H/S framework plus its classic instantiations (Cyclon,
Newscast).  RAPTEE's trusted communication uses the framework's
recommended instantiation (see
:meth:`repro.gossip.framework.GossipPssConfig.raptee_instantiation`).
"""

from repro.gossip.cyclon import CyclonNode
from repro.gossip.framework import (
    GossipPssConfig,
    GossipPssNode,
    ViewExchangeReply,
    ViewExchangeRequest,
)
from repro.gossip.newscast import NewscastNode
from repro.gossip.partial_view import PartialView, ViewEntry
from repro.gossip.secure_ps import SecurePsNode

__all__ = [
    "SecurePsNode",
    "CyclonNode",
    "GossipPssConfig",
    "GossipPssNode",
    "ViewExchangeReply",
    "ViewExchangeRequest",
    "NewscastNode",
    "PartialView",
    "ViewEntry",
]
